open Linalg

(* The parallel runtime: work queue, cancellation, domain pool, and the
   determinism contract of the parallel verifier.  The whole suite runs
   twice from dune: once with the default worker count below and once
   with CHARON_TEST_WORKERS=2 (see test/dune). *)

let workers_under_test =
  match Sys.getenv_opt "CHARON_TEST_WORKERS" with
  | Some s -> ( try max 2 (int_of_string (String.trim s)) with _ -> 4)
  | None -> 4

(* ------------------------------------------------------------------ *)
(* Wqueue *)

let test_wqueue_pop_min_first () =
  let q = Parallel.Wqueue.create () in
  Parallel.Wqueue.push q ~priority:3.0 "c";
  Parallel.Wqueue.push q ~priority:1.0 "a";
  Parallel.Wqueue.push q ~priority:2.0 "b";
  Alcotest.(check int) "size" 3 (Parallel.Wqueue.size q);
  List.iter
    (fun expected ->
      (match Parallel.Wqueue.pop q with
      | Some v -> Alcotest.(check string) "min first" expected v
      | None -> Alcotest.fail "queue drained early");
      Parallel.Wqueue.finish q)
    [ "a"; "b"; "c" ];
  Util.check_true "drained" (Parallel.Wqueue.pop q = None)

let test_wqueue_drain_tracks_outstanding () =
  let q = Parallel.Wqueue.create () in
  Parallel.Wqueue.push q ~priority:0.0 0;
  (match Parallel.Wqueue.pop q with
  | Some 0 -> ()
  | _ -> Alcotest.fail "expected the root item");
  (* The root is in flight: the queue is empty but not drained. *)
  Alcotest.(check int) "in flight" 1 (Parallel.Wqueue.outstanding q);
  Parallel.Wqueue.push q ~priority:1.0 1;
  Parallel.Wqueue.push q ~priority:2.0 2;
  Parallel.Wqueue.finish q;
  Alcotest.(check int) "children pending" 2 (Parallel.Wqueue.outstanding q);
  (match Parallel.Wqueue.pop q with
  | Some 1 -> Parallel.Wqueue.finish q
  | _ -> Alcotest.fail "expected child 1");
  (match Parallel.Wqueue.pop q with
  | Some 2 -> Parallel.Wqueue.finish q
  | _ -> Alcotest.fail "expected child 2");
  Util.check_true "fully drained" (Parallel.Wqueue.pop q = None);
  Alcotest.(check int) "nothing outstanding" 0 (Parallel.Wqueue.outstanding q)

let test_wqueue_close_cancels () =
  let q = Parallel.Wqueue.create () in
  Parallel.Wqueue.push q ~priority:0.0 0;
  Parallel.Wqueue.close q;
  Util.check_true "closed" (Parallel.Wqueue.closed q);
  Util.check_true "pop after close" (Parallel.Wqueue.pop q = None);
  Parallel.Wqueue.push q ~priority:1.0 1;
  Util.check_true "push after close is a no-op" (Parallel.Wqueue.pop q = None)

let test_wqueue_finish_overcall_raises () =
  let q : int Parallel.Wqueue.t = Parallel.Wqueue.create () in
  Alcotest.check_raises "finish without pop"
    (Invalid_argument "Wqueue.finish: more finishes than pops") (fun () ->
      Parallel.Wqueue.finish q)

let test_wqueue_blocking_handoff () =
  (* A consumer blocked on an empty-but-not-drained queue must wake up
     when a peer pushes a child. *)
  let q = Parallel.Wqueue.create () in
  Parallel.Wqueue.push q ~priority:0.0 0;
  (match Parallel.Wqueue.pop q with
  | Some 0 -> ()
  | _ -> Alcotest.fail "expected the root item");
  let consumer =
    Domain.spawn (fun () ->
        match Parallel.Wqueue.pop q with
        | Some v ->
            Parallel.Wqueue.finish q;
            Some v
        | None -> None)
  in
  Unix.sleepf 0.02;
  Parallel.Wqueue.push q ~priority:1.0 42;
  Parallel.Wqueue.finish q;
  (match Domain.join consumer with
  | Some 42 -> ()
  | _ -> Alcotest.fail "blocked consumer did not receive the pushed item");
  Util.check_true "drained" (Parallel.Wqueue.pop q = None)

(* ------------------------------------------------------------------ *)
(* Cancel *)

let test_cancel_token () =
  let c = Parallel.Cancel.create () in
  Util.check_true "fresh" (not (Parallel.Cancel.cancelled c));
  Parallel.Cancel.cancel c;
  Util.check_true "cancelled" (Parallel.Cancel.cancelled c);
  Parallel.Cancel.cancel c;
  Util.check_true "sticky" (Parallel.Cancel.cancelled c)

(* ------------------------------------------------------------------ *)
(* Pool *)

let test_pool_iter_covers_exactly_once () =
  let n = 200 in
  let hits = Array.init n (fun _ -> Atomic.make 0) in
  Parallel.Pool.iter ~workers:workers_under_test n (fun i ->
      Atomic.incr hits.(i));
  Array.iteri
    (fun i h -> Alcotest.(check int) (Printf.sprintf "index %d" i) 1 (Atomic.get h))
    hits

let test_pool_run_spawns_each_worker_once () =
  let w = workers_under_test in
  let calls = Array.init w (fun _ -> Atomic.make 0) in
  Parallel.Pool.run ~workers:w (fun i -> Atomic.incr calls.(i));
  Array.iteri
    (fun i c -> Alcotest.(check int) (Printf.sprintf "worker %d" i) 1 (Atomic.get c))
    calls

exception Boom

let test_pool_run_reraises () =
  Alcotest.check_raises "worker exception propagates" Boom (fun () ->
      Parallel.Pool.run ~workers:(max 2 workers_under_test) (fun i ->
          if i = 1 then raise Boom))

(* ------------------------------------------------------------------ *)
(* Kpool: the persistent kernel-helper team *)

let test_kpool_covers_tasks_exactly_once () =
  let n = 64 in
  let hits = Array.init n (fun _ -> Atomic.make 0) in
  ignore
    (Parallel.Kpool.run ~jobs:workers_under_test ~tasks:n (fun i ->
         Atomic.incr hits.(i)));
  Array.iteri
    (fun i h ->
      Alcotest.(check int) (Printf.sprintf "task %d" i) 1 (Atomic.get h))
    hits

let test_kpool_trivial_widths_run_inline () =
  let ran = ref false in
  Util.check_true "jobs=1 is the trivial case"
    (Parallel.Kpool.run ~jobs:1 ~tasks:4 (fun _ -> ran := true));
  Util.check_true "tasks ran" !ran;
  Util.check_true "tasks=1 is the trivial case"
    (Parallel.Kpool.run ~jobs:4 ~tasks:1 (fun _ -> ()))

let test_kpool_nested_call_degrades_sequentially () =
  (* A kernel call issued from inside a kernel task must not deadlock
     or over-subscribe: the team is busy, so the inner call reports
     [false] and runs inline on its own domain. *)
  let inner_parallel = Atomic.make false in
  let inner_ran = Array.init 8 (fun _ -> Atomic.make 0) in
  ignore
    (Parallel.Kpool.run ~jobs:2 ~tasks:2 (fun _ ->
         if
           Parallel.Kpool.run ~jobs:2 ~tasks:8 (fun i ->
               Atomic.incr inner_ran.(i))
         then Atomic.set inner_parallel true));
  Util.check_true "inner call fell back to sequential"
    (not (Atomic.get inner_parallel));
  (* Degrading must not drop work: both nested rounds of 8 tasks ran. *)
  Array.iteri
    (fun i h ->
      Alcotest.(check int) (Printf.sprintf "nested task %d" i) 2 (Atomic.get h))
    inner_ran

let test_kpool_reraises_task_exception () =
  Alcotest.check_raises "task exception propagates" Boom (fun () ->
      ignore
        (Parallel.Kpool.run ~jobs:2 ~tasks:8 (fun i ->
             if i = 3 then raise Boom)))

let test_kpool_peak_stays_within_jobs () =
  Parallel.Kpool.reset_peak ();
  ignore
    (Parallel.Kpool.run ~jobs:2 ~tasks:16 (fun _ -> Unix.sleepf 0.001));
  Util.check_true
    (Printf.sprintf "peak %d <= 2" (Parallel.Kpool.peak_participants ()))
    (Parallel.Kpool.peak_participants () <= 2)

(* ------------------------------------------------------------------ *)
(* Parallel verification: determinism and cancellation *)

let verdict_kind = function
  | Common.Outcome.Verified -> "verified"
  | Common.Outcome.Refuted _ -> "refuted"
  | Common.Outcome.Timeout -> "timeout"
  | Common.Outcome.Unknown -> "unknown"

let outcome ?budget ~workers ~seed net property =
  (Charon.Verify.run ?budget ~workers ~rng:(Rng.create seed)
     ~policy:Charon.Policy.default net property)
    .Charon.Verify.outcome

let check_workers_agree ~name ?budget ~seed net property =
  let seq = outcome ?budget ~workers:1 ~seed net property in
  let par = outcome ?budget ~workers:workers_under_test ~seed net property in
  Alcotest.(check string)
    (name ^ ": workers agree")
    (verdict_kind seq) (verdict_kind par);
  (* Soundness of both runs: a refutation must be a real witness. *)
  (match par with
  | Common.Outcome.Refuted x ->
      Util.check_true (name ^ ": parallel witness violates")
        (not (Common.Property.holds_at net property x))
  | _ -> ());
  seq

let test_workers_agree_xor () =
  let net = Nn.Init.xor () in
  let region =
    Domains.Box.create ~lo:[| 0.3; 0.3 |] ~hi:[| 0.7; 0.7 |]
  in
  let good = Common.Property.create ~region ~target:1 () in
  let bad = Common.Property.create ~region ~target:0 () in
  Util.check_true "xor good verified"
    (check_workers_agree ~name:"xor-good" ~seed:1 net good
    = Common.Outcome.Verified);
  match check_workers_agree ~name:"xor-bad" ~seed:1 net bad with
  | Common.Outcome.Refuted _ -> ()
  | o -> Alcotest.failf "xor-bad: expected refutation, got %s" (verdict_kind o)

let test_workers_agree_acas () =
  let problems = Experiments.Training.acas_problems ~seed:5 in
  List.iteri
    (fun i (p : Charon.Learn.problem) ->
      let budget = Common.Budget.of_steps 200_000 in
      let o =
        check_workers_agree
          ~name:(Printf.sprintf "acas-%d" i)
          ~budget ~seed:(100 + i) p.Charon.Learn.net p.Charon.Learn.property
      in
      (* The budget is sized so both runs finish; a timeout here would
         make the agreement check vacuous. *)
      Util.check_true
        (Printf.sprintf "acas-%d solved" i)
        (Common.Outcome.is_solved o))
    problems

let test_workers_agree_random_problems () =
  (* Multi-node searches: random problems whose trees genuinely split,
     compared under Outcome.agrees (a timeout is consistent with
     anything — the step budget is shared, so the exhaustion point moves
     with scheduling, but Verified/Refuted may never conflict). *)
  Util.repeat ~seed:142 ~count:15 (fun rng i ->
      let net = Util.small_net rng in
      let box = Util.small_box rng net.Nn.Network.input_dim in
      let k = Rng.int rng net.Nn.Network.output_dim in
      let prop = Common.Property.create ~region:box ~target:k () in
      let budget () = Common.Budget.of_steps 20_000 in
      let seq = outcome ~budget:(budget ()) ~workers:1 ~seed:i net prop in
      let par =
        outcome ~budget:(budget ()) ~workers:workers_under_test ~seed:i net
          prop
      in
      Util.check_true
        (Printf.sprintf "random-%d agrees (%s vs %s)" i
           (Common.Outcome.label seq) (Common.Outcome.label par))
        (Common.Outcome.agrees seq par);
      match par with
      | Common.Outcome.Refuted x ->
          Util.check_true
            (Printf.sprintf "random-%d witness violates" i)
            (not (Common.Property.holds_at net prop x))
      | _ -> ())

(* The [n]-th problem of a [Util.repeat]-style seeded stream.  Splits
   are independent, so skipping the first [n - 1] without materializing
   them reproduces exactly the problem the agreement sweep above sees. *)
let nth_small_problem ~seed n =
  let rng = Rng.create seed in
  let pick = ref None in
  for i = 1 to n do
    let r = Rng.split rng in
    if i = n then
      let net = Util.small_net r in
      let box = Util.small_box r net.Nn.Network.input_dim in
      let k = Rng.int r net.Nn.Network.output_dim in
      pick := Some (net, Common.Property.create ~region:box ~target:k ())
  done;
  Option.get !pick

let test_parallel_timeout_terminates () =
  (* A starved shared budget must cancel the parallel drain and return
     Timeout rather than hang or crash.  The chosen problem is verified
     with a 7-node tree under a generous budget (so no refutation can
     race the budget check), and its root is inconclusive (so one step
     of budget cannot be enough). *)
  let net, prop = nth_small_problem ~seed:142 37 in
  let budget = Common.Budget.of_steps 1 in
  match outcome ~budget ~workers:workers_under_test ~seed:37 net prop with
  | Common.Outcome.Timeout -> ()
  | o -> Alcotest.failf "expected timeout, got %s" (verdict_kind o)

let test_workers_validated () =
  let net = Nn.Init.xor () in
  let region = Domains.Box.create ~lo:[| 0.4; 0.4 |] ~hi:[| 0.6; 0.6 |] in
  let prop = Common.Property.create ~region ~target:1 () in
  Alcotest.check_raises "workers must be >= 1"
    (Invalid_argument "Verify.run: workers must be at least 1") (fun () ->
      ignore (outcome ~workers:0 ~seed:1 net prop))

(* ------------------------------------------------------------------ *)
(* Kernel-parallelism nesting policy (Verify.run + Mat.gemm ?jobs) *)

let test_kernel_nesting_respects_domain_budget () =
  (* A net wide enough that one layer's zonotope GEMM crosses the
     kernel parallel-size threshold (2*128^3 flops >= Mat's 4e6-flop
     floor), so a solo-in-flight verifier worker genuinely fans its
     kernels out onto the Kpool team. *)
  let dim = 128 in
  (* A wide random hidden layer followed by a constant-margin output
     layer (zero weights, biased logit): class 0 wins everywhere, so
     the run must reach the analyzer and verify — a random dense net
     would be refuted by PGD at the root, before any GEMM fans out. *)
  let rng = Rng.create 91 in
  let hidden =
    Mat.init dim dim (fun _ _ -> Rng.gaussian rng /. sqrt (float_of_int dim))
  in
  let net =
    Nn.Network.create ~input_dim:dim
      [
        Nn.Layer.affine hidden (Vec.zeros dim);
        Nn.Layer.Relu;
        Nn.Layer.affine (Mat.zeros 2 dim) [| 1.0; 0.0 |];
      ]
  in
  let region =
    Domains.Box.create
      ~lo:(Array.make dim (-0.01))
      ~hi:(Array.make dim 0.01)
  in
  let prop = Common.Property.create ~region ~target:0 () in
  let run workers =
    Charon.Verify.run
      ~budget:(Common.Budget.of_steps 500)
      ~workers ~rng:(Rng.create 91) ~policy:Charon.Policy.default net prop
  in
  let seq = run 1 in
  Util.check_true "sequential run never fans out"
    (seq.Charon.Verify.kernel_fanouts = 0);
  Parallel.Kpool.reset_peak ();
  let workers = max 2 workers_under_test in
  let par = run workers in
  Alcotest.(check string)
    "verdict matches sequential"
    (verdict_kind seq.Charon.Verify.outcome)
    (verdict_kind par.Charon.Verify.outcome);
  (* The worker holding the only outstanding region re-spends the
     worker budget on kernel jobs, so at least the root region fans
     out... *)
  Util.check_true "solo-in-flight worker fanned out"
    (par.Charon.Verify.kernel_fanouts >= 1);
  (* ...and the nesting policy keeps the total domain budget intact:
     the kernel team never had more participants computing at once than
     the [-j] width that Verify.run was given. *)
  Util.check_true
    (Printf.sprintf "peak kernel domains %d <= %d"
       par.Charon.Verify.kernel_peak_domains workers)
    (par.Charon.Verify.kernel_peak_domains <= workers)

(* ------------------------------------------------------------------ *)
(* Parallel suite runner *)

let tiny_workload () =
  let net = Nn.Init.xor () in
  let entry =
    {
      Datasets.Suite.name = "xor";
      description = "xor test network";
      net;
      image_spec = Datasets.Synth_images.tiny;
      convolutional = false;
      test_accuracy = 1.0;
    }
  in
  let region = Domains.Box.create ~lo:[| 0.3; 0.3 |] ~hi:[| 0.7; 0.7 |] in
  let props =
    [
      Common.Property.create ~name:"holds" ~region ~target:1 ();
      Common.Property.create ~name:"fails" ~region ~target:0 ();
    ]
  in
  [ (entry, props) ]

let test_run_suite_jobs_preserves_order () =
  let tools =
    [ Experiments.Tool.charon (); Experiments.Tool.ai2 Domains.Domain.interval ]
  in
  let run jobs =
    Experiments.Runner.run_suite ~jobs ~seed:1 ~timeout:10.0 tools
      (tiny_workload ())
  in
  let seq = run 1 in
  let par = run workers_under_test in
  Alcotest.(check int) "same length" (List.length seq) (List.length par);
  List.iter2
    (fun (a : Experiments.Runner.result) (b : Experiments.Runner.result) ->
      Alcotest.(check string) "tool order" a.tool b.tool;
      Alcotest.(check string) "network order" a.network b.network;
      Alcotest.(check string) "property order" a.property b.property;
      Alcotest.(check string) "same verdict" (verdict_kind a.outcome)
        (verdict_kind b.outcome))
    seq par

let () =
  Alcotest.run "parallel"
    [
      Util.suite "wqueue"
        [
          Util.case "pop min first" test_wqueue_pop_min_first;
          Util.case "drain tracks outstanding" test_wqueue_drain_tracks_outstanding;
          Util.case "close cancels" test_wqueue_close_cancels;
          Util.case "finish overcall raises" test_wqueue_finish_overcall_raises;
          Util.case "blocking handoff" test_wqueue_blocking_handoff;
        ];
      Util.suite "cancel" [ Util.case "token" test_cancel_token ];
      Util.suite "pool"
        [
          Util.case "iter covers exactly once" test_pool_iter_covers_exactly_once;
          Util.case "run spawns each worker once"
            test_pool_run_spawns_each_worker_once;
          Util.case "run re-raises" test_pool_run_reraises;
        ];
      Util.suite "kpool"
        [
          Util.case "covers tasks exactly once" test_kpool_covers_tasks_exactly_once;
          Util.case "trivial widths run inline" test_kpool_trivial_widths_run_inline;
          Util.case "nested call degrades sequentially"
            test_kpool_nested_call_degrades_sequentially;
          Util.case "re-raises task exception" test_kpool_reraises_task_exception;
          Util.case "peak stays within jobs" test_kpool_peak_stays_within_jobs;
        ];
      Util.suite "verify-parallel"
        [
          Util.case "workers agree on xor" test_workers_agree_xor;
          Util.slow_case "workers agree on acas" test_workers_agree_acas;
          Util.slow_case "workers agree on random problems"
            test_workers_agree_random_problems;
          Util.case "starved budget times out" test_parallel_timeout_terminates;
          Util.case "workers validated" test_workers_validated;
          Util.case "kernel nesting respects domain budget"
            test_kernel_nesting_respects_domain_budget;
        ];
      Util.suite "runner-parallel"
        [ Util.case "jobs preserve order" test_run_suite_jobs_preserves_order ];
    ]
