open Linalg

(* ------------------------------------------------------------------ *)
(* Rng *)

let test_rng_deterministic () =
  let a = Rng.create 42 and b = Rng.create 42 in
  for _ = 1 to 100 do
    Alcotest.(check int64) "same stream" (Rng.bits64 a) (Rng.bits64 b)
  done

let test_rng_split_independent () =
  let parent = Rng.create 7 in
  let child = Rng.split parent in
  let x = Rng.bits64 child and y = Rng.bits64 parent in
  Alcotest.(check bool) "different streams" true (x <> y)

let test_rng_int_range () =
  let rng = Rng.create 1 in
  for _ = 1 to 1000 do
    let v = Rng.int rng 10 in
    Util.check_true "in range" (v >= 0 && v < 10)
  done

let test_rng_float_range () =
  let rng = Rng.create 2 in
  for _ = 1 to 1000 do
    let v = Rng.float rng 3.5 in
    Util.check_true "in range" (v >= 0.0 && v < 3.5)
  done

let test_rng_uniform_mean () =
  let rng = Rng.create 3 in
  let n = 20_000 in
  let acc = ref 0.0 in
  for _ = 1 to n do
    acc := !acc +. Rng.uniform rng ~lo:2.0 ~hi:4.0
  done;
  Util.check_close ~eps:0.05 "mean near 3" 3.0 (!acc /. float_of_int n)

let test_rng_gaussian_moments () =
  let rng = Rng.create 4 in
  let n = 50_000 in
  let sum = ref 0.0 and sq = ref 0.0 in
  for _ = 1 to n do
    let g = Rng.gaussian rng in
    sum := !sum +. g;
    sq := !sq +. (g *. g)
  done;
  Util.check_close ~eps:0.05 "mean 0" 0.0 (!sum /. float_of_int n);
  Util.check_close ~eps:0.1 "variance 1" 1.0 (!sq /. float_of_int n)

let test_rng_shuffle_permutation () =
  let rng = Rng.create 5 in
  let a = Array.init 50 Fun.id in
  Rng.shuffle rng a;
  let sorted = Array.copy a in
  Array.sort compare sorted;
  Alcotest.(check (array int)) "is a permutation" (Array.init 50 Fun.id) sorted

let test_rng_int_rejects_nonpositive () =
  let rng = Rng.create 6 in
  Alcotest.check_raises "zero bound" (Invalid_argument "Rng.int: bound must be positive")
    (fun () -> ignore (Rng.int rng 0))

(* ------------------------------------------------------------------ *)
(* Vec *)

let test_vec_basic_ops () =
  let a = [| 1.0; 2.0; 3.0 |] and b = [| 4.0; 5.0; 6.0 |] in
  Util.check_vec "add" [| 5.0; 7.0; 9.0 |] (Vec.add a b);
  Util.check_vec "sub" [| -3.0; -3.0; -3.0 |] (Vec.sub a b);
  Util.check_vec "mul" [| 4.0; 10.0; 18.0 |] (Vec.mul a b);
  Util.check_vec "scale" [| 2.0; 4.0; 6.0 |] (Vec.scale 2.0 a);
  Util.check_float "dot" 32.0 (Vec.dot a b);
  Util.check_float "sum" 6.0 (Vec.sum a);
  Util.check_float "mean" 2.0 (Vec.mean a)

let test_vec_norms () =
  let v = [| 3.0; -4.0 |] in
  Util.check_float "norm2" 5.0 (Vec.norm2 v);
  Util.check_float "norm_inf" 4.0 (Vec.norm_inf v);
  Util.check_float "dist2" 5.0 (Vec.dist2 [| 0.0; 0.0 |] v)

let test_vec_argmax_first_tie () =
  Alcotest.(check int) "first on ties" 1 (Vec.argmax [| 0.0; 5.0; 5.0 |]);
  Alcotest.(check int) "argmin" 0 (Vec.argmin [| -1.0; 5.0; 5.0 |])

let test_vec_axpy () =
  let y = [| 1.0; 1.0 |] in
  Vec.axpy 2.0 [| 3.0; 4.0 |] y;
  Util.check_vec "axpy" [| 7.0; 9.0 |] y

let test_vec_clamp () =
  let lo = [| 0.0; 0.0 |] and hi = [| 1.0; 1.0 |] in
  Util.check_vec "clamp" [| 0.0; 1.0 |] (Vec.clamp ~lo ~hi [| -5.0; 2.0 |])

let test_vec_relu () =
  Util.check_vec "relu" [| 0.0; 0.0; 2.0 |] (Vec.relu [| -1.0; 0.0; 2.0 |])

let test_vec_dim_mismatch () =
  Alcotest.check_raises "add mismatch"
    (Invalid_argument "Vec.add: dimension mismatch (2 vs 3)") (fun () ->
      ignore (Vec.add [| 1.0; 2.0 |] [| 1.0; 2.0; 3.0 |]))

(* ------------------------------------------------------------------ *)
(* Mat *)

let test_mat_matvec () =
  let m = Mat.of_rows [| [| 1.0; 2.0 |]; [| 3.0; 4.0 |] |] in
  Util.check_vec "matvec" [| 5.0; 11.0 |] (Mat.matvec m [| 1.0; 2.0 |])

let test_mat_matvec_t_is_transpose () =
  Util.repeat ~seed:10 (fun rng _ ->
      let r = 1 + Rng.int rng 5 and c = 1 + Rng.int rng 5 in
      let m = Mat.init r c (fun _ _ -> Rng.gaussian rng) in
      let x = Vec.init r (fun _ -> Rng.gaussian rng) in
      Util.check_vec ~eps:1e-9 "matvec_t = (m^T) v"
        (Mat.matvec (Mat.transpose m) x)
        (Mat.matvec_t m x))

let test_mat_matmul_identity () =
  Util.repeat ~seed:11 (fun rng _ ->
      let n = 1 + Rng.int rng 5 in
      let m = Mat.init n n (fun _ _ -> Rng.gaussian rng) in
      Util.check_true "m * I = m"
        (Mat.approx_equal m (Mat.matmul m (Mat.identity n))))

let test_mat_matmul_associative_with_vector () =
  Util.repeat ~seed:12 (fun rng _ ->
      let a = Mat.init 3 4 (fun _ _ -> Rng.gaussian rng) in
      let b = Mat.init 4 2 (fun _ _ -> Rng.gaussian rng) in
      let x = Vec.init 2 (fun _ -> Rng.gaussian rng) in
      Util.check_vec ~eps:1e-9 "(ab)x = a(bx)"
        (Mat.matvec a (Mat.matvec b x))
        (Mat.matvec (Mat.matmul a b) x))

let test_mat_abs_row_sums () =
  let m = Mat.of_rows [| [| 1.0; -2.0 |]; [| -3.0; 4.0 |] |] in
  Util.check_vec "abs row sums" [| 3.0; 7.0 |] (Mat.abs_row_sums m)

let random_spd rng n =
  let a = Mat.init n n (fun _ _ -> Rng.gaussian rng) in
  let ata = Mat.matmul (Mat.transpose a) a in
  (* Regularise to keep the matrix well-conditioned. *)
  Mat.add ata (Mat.scale (0.1 *. float_of_int n) (Mat.identity n))

let test_cholesky_factorizes () =
  Util.repeat ~seed:13 (fun rng _ ->
      let n = 1 + Rng.int rng 6 in
      let a = random_spd rng n in
      let l = Mat.cholesky a in
      Util.check_true "L L^T = A"
        (Mat.approx_equal ~eps:1e-7 a (Mat.matmul l (Mat.transpose l))))

let test_cholesky_solve () =
  Util.repeat ~seed:14 (fun rng _ ->
      let n = 1 + Rng.int rng 6 in
      let a = random_spd rng n in
      let x_true = Vec.init n (fun _ -> Rng.gaussian rng) in
      let b = Mat.matvec a x_true in
      let l = Mat.cholesky a in
      let x = Mat.cholesky_solve l b in
      Util.check_vec ~eps:1e-6 "solves A x = b" x_true x)

let test_cholesky_rejects_indefinite () =
  let m = Mat.of_rows [| [| 1.0; 2.0 |]; [| 2.0; 1.0 |] |] in
  Alcotest.check_raises "not PD"
    (Failure "Mat.cholesky: matrix not positive definite") (fun () ->
      ignore (Mat.cholesky m))

(* ------------------------------------------------------------------ *)
(* GEMM and in-place kernels *)

(* Triple-loop oracle for [c <- alpha * op(a) * op(b) + beta * c],
   deliberately naive so the blocked kernel is checked against
   independently written arithmetic. *)
let naive_gemm ~transa ~transb ~alpha ~beta a b c =
  let opa = if transa then Mat.transpose a else a in
  let opb = if transb then Mat.transpose b else b in
  Mat.init opa.Mat.rows opb.Mat.cols (fun i j ->
      let acc = ref 0.0 in
      for p = 0 to opa.Mat.cols - 1 do
        acc := !acc +. (Mat.get opa i p *. Mat.get opb p j)
      done;
      (alpha *. !acc) +. (beta *. Mat.get c i j))

let check_gemm_case ~transa ~transb ~alpha ~beta ~m ~n ~k rng =
  let a = if transa then Mat.init k m (fun _ _ -> Rng.gaussian rng)
          else Mat.init m k (fun _ _ -> Rng.gaussian rng) in
  let b = if transb then Mat.init n k (fun _ _ -> Rng.gaussian rng)
          else Mat.init k n (fun _ _ -> Rng.gaussian rng) in
  let c = Mat.init m n (fun _ _ -> Rng.gaussian rng) in
  let expected = naive_gemm ~transa ~transb ~alpha ~beta a b c in
  let got = Mat.copy c in
  Mat.gemm ~transa ~transb ~alpha ~beta a b got;
  Util.check_true
    (Printf.sprintf "gemm %dx%dx%d ta=%b tb=%b alpha=%g beta=%g" m n k transa
       transb alpha beta)
    (Mat.approx_equal ~eps:1e-9 expected got)

let test_gemm_matches_naive () =
  Util.repeat ~seed:21 ~count:30 (fun rng _ ->
      (* Sizes straddle the 4x4 tile: remainders in every dimension. *)
      let m = 1 + Rng.int rng 13
      and n = 1 + Rng.int rng 13
      and k = 1 + Rng.int rng 17 in
      let alpha = [| 1.0; -0.5; 2.0 |].(Rng.int rng 3)
      and beta = [| 0.0; 1.0; -0.25 |].(Rng.int rng 3) in
      List.iter
        (fun (transa, transb) ->
          check_gemm_case ~transa ~transb ~alpha ~beta ~m ~n ~k rng)
        [ (false, false); (false, true); (true, false); (true, true) ])

let test_gemm_crosses_blocking () =
  (* One shape wider than [block_n] and deeper than a single tile pass,
     so the panel loops and their edges are all exercised. *)
  let rng = Rng.create 22 in
  List.iter
    (fun (transa, transb) ->
      check_gemm_case ~transa ~transb ~alpha:1.0 ~beta:1.0 ~m:9 ~n:133 ~k:70
        rng)
    [ (false, false); (false, true); (true, false); (true, true) ]

let test_gemm_alpha_zero_is_beta_scale () =
  let rng = Rng.create 23 in
  let a = Mat.init 5 4 (fun _ _ -> Rng.gaussian rng) in
  let b = Mat.init 4 6 (fun _ _ -> Rng.gaussian rng) in
  let c = Mat.init 5 6 (fun _ _ -> Rng.gaussian rng) in
  let got = Mat.copy c in
  Mat.gemm ~alpha:0.0 ~beta:(-2.0) a b got;
  Util.check_true "alpha=0 leaves beta*c"
    (Mat.approx_equal ~eps:0.0 (Mat.scale (-2.0) c) got)

let test_gemm_rejects_mismatch () =
  let a = Mat.zeros 2 3 and b = Mat.zeros 4 5 in
  Alcotest.check_raises "inner mismatch"
    (Invalid_argument "Mat.gemm: inner dimension mismatch (3 vs 4)")
    (fun () -> Mat.gemm a b (Mat.zeros 2 5));
  let b = Mat.zeros 3 5 in
  Alcotest.check_raises "output shape"
    (Invalid_argument "Mat.gemm: output is 2x4, expected 2x5") (fun () ->
      Mat.gemm a b (Mat.zeros 2 4))

let test_mat_matmul_is_gemm () =
  Util.repeat ~seed:24 (fun rng _ ->
      let m = 1 + Rng.int rng 9
      and n = 1 + Rng.int rng 9
      and k = 1 + Rng.int rng 9 in
      let a = Mat.init m k (fun _ _ -> Rng.gaussian rng) in
      let b = Mat.init k n (fun _ _ -> Rng.gaussian rng) in
      Util.check_true "matmul = oracle"
        (Mat.approx_equal ~eps:1e-9
           (naive_gemm ~transa:false ~transb:false ~alpha:1.0 ~beta:0.0 a b
              (Mat.zeros m n))
           (Mat.matmul a b)))

let test_mat_inplace_ops () =
  let a = Mat.of_rows [| [| 1.0; 2.0 |]; [| 3.0; 4.0 |] |] in
  let b = Mat.of_rows [| [| 0.5; -1.0 |]; [| 2.0; 0.0 |] |] in
  let into = Mat.zeros 2 2 in
  Mat.add_into a b ~into;
  Util.check_true "add_into" (Mat.approx_equal ~eps:0.0 (Mat.add a b) into);
  (* Aliasing: accumulate into one of the operands. *)
  let acc = Mat.copy a in
  Mat.add_into acc b ~into:acc;
  Util.check_true "add_into aliased"
    (Mat.approx_equal ~eps:0.0 (Mat.add a b) acc);
  let s = Mat.copy a in
  Mat.scale_inplace (-3.0) s;
  Util.check_true "scale_inplace"
    (Mat.approx_equal ~eps:0.0 (Mat.scale (-3.0) a) s);
  let y = Mat.copy b in
  Mat.axpy 2.0 a y;
  Util.check_true "axpy"
    (Mat.approx_equal ~eps:0.0 (Mat.add (Mat.scale 2.0 a) b) y)

(* ------------------------------------------------------------------ *)
(* Parallel GEMM: the determinism contract of [Mat.gemm ?jobs] *)

(* Every parallel schedule must produce the exact float array the
   sequential kernel does (docs/algorithms.md), so the check below is
   structural equality on [data] — not approx_equal. *)
let check_gemm_jobs_identical ~transa ~transb ~m ~n ~k rng =
  let a = if transa then Mat.init k m (fun _ _ -> Rng.gaussian rng)
          else Mat.init m k (fun _ _ -> Rng.gaussian rng) in
  let b = if transb then Mat.init n k (fun _ _ -> Rng.gaussian rng)
          else Mat.init k n (fun _ _ -> Rng.gaussian rng) in
  let c = Mat.init m n (fun _ _ -> Rng.gaussian rng) in
  let reference = Mat.copy c in
  Mat.gemm ~transa ~transb ~alpha:1.5 ~beta:(-0.5) ~jobs:1 a b reference;
  List.iter
    (fun jobs ->
      let got = Mat.copy c in
      Mat.gemm ~transa ~transb ~alpha:1.5 ~beta:(-0.5) ~jobs a b got;
      Util.check_true
        (Printf.sprintf "gemm %dx%dx%d ta=%b tb=%b jobs=%d bit-identical" m n
           k transa transb jobs)
        (got.Mat.data = reference.Mat.data))
    [ 2; 4 ]

let all_transposes =
  [ (false, false); (false, true); (true, false); (true, true) ]

let test_gemm_jobs_bit_identical () =
  let rng = Rng.create 26 in
  (* Sizes straddle the 4-row panel granularity: a multiple of 4, a
     remainder in every dimension, and a shape wide enough that the
     panel split is non-trivial at 4 jobs. *)
  List.iter
    (fun (m, n, k) ->
      List.iter
        (fun (transa, transb) ->
          check_gemm_jobs_identical ~transa ~transb ~m ~n ~k rng)
        all_transposes)
    [ (9, 133, 70); (64, 64, 64); (33, 17, 29); (8, 8, 8) ]

let test_gemm_jobs_degenerate_shapes () =
  let rng = Rng.create 27 in
  (* Single-row, single-column, and empty operands: the parallel driver
     must neither crash on an empty panel split nor diverge from the
     sequential result (empty products reduce to the beta scaling). *)
  List.iter
    (fun (m, n, k) ->
      List.iter
        (fun (transa, transb) ->
          check_gemm_jobs_identical ~transa ~transb ~m ~n ~k rng)
        all_transposes)
    [ (1, 50, 20); (50, 1, 20); (3, 3, 1); (0, 5, 5); (5, 0, 5); (5, 5, 0) ]

let qcheck_gemm_jobs_identical =
  let gen =
    QCheck2.Gen.(
      pair
        (triple (int_range 0 40) (int_range 0 40) (int_range 0 48))
        (triple (int_range 2 8) bool bool))
  in
  Util.qtest "gemm ?jobs bit-identical on random shapes" ~count:60 gen
    (fun ((m, n, k), (jobs, transa, transb)) ->
      (* Operands derive deterministically from the generated shape so a
         failure reproduces from the printed counterexample alone. *)
      let rng =
        Rng.create (1 + m + (41 * n) + (1681 * k) + (79_507 * jobs))
      in
      let a = if transa then Mat.init k m (fun _ _ -> Rng.gaussian rng)
              else Mat.init m k (fun _ _ -> Rng.gaussian rng) in
      let b = if transb then Mat.init n k (fun _ _ -> Rng.gaussian rng)
              else Mat.init k n (fun _ _ -> Rng.gaussian rng) in
      let c = Mat.init m n (fun _ _ -> Rng.gaussian rng) in
      let reference = Mat.copy c in
      Mat.gemm ~transa ~transb ~beta:1.0 ~jobs:1 a b reference;
      let got = Mat.copy c in
      Mat.gemm ~transa ~transb ~beta:1.0 ~jobs a b got;
      got.Mat.data = reference.Mat.data)

let test_gemm_ambient_jobs_scoped () =
  (* [with_default_jobs] must set the ambient width only inside its
     scope, and an ambient width must not change results. *)
  Alcotest.(check int) "default ambient" 1 (Mat.default_jobs ());
  let rng = Rng.create 28 in
  let a = Mat.init 24 24 (fun _ _ -> Rng.gaussian rng) in
  let b = Mat.init 24 24 (fun _ _ -> Rng.gaussian rng) in
  let seq = Mat.zeros 24 24 in
  Mat.gemm a b seq;
  let amb =
    Mat.with_default_jobs 4 (fun () ->
        Alcotest.(check int) "ambient in scope" 4 (Mat.default_jobs ());
        let c = Mat.zeros 24 24 in
        Mat.gemm a b c;
        c)
  in
  Alcotest.(check int) "ambient restored" 1 (Mat.default_jobs ());
  Util.check_true "ambient width is bit-identical"
    (amb.Mat.data = seq.Mat.data)

(* ------------------------------------------------------------------ *)
(* Scratch arena *)

let test_scratch_zero_filled_and_reused () =
  Scratch.trim ();
  (* The escaping reference below is only compared for physical
     identity, never read or written outside the scope. *)
  let first = ref [||] in
  Scratch.with_floats 64 (fun buf ->
      Alcotest.(check int) "requested size" 64 (Array.length buf);
      Util.check_true "fresh buffer is zero"
        (Array.for_all (fun x -> x = 0.0) buf);
      Array.fill buf 0 64 7.0;
      first := buf);
  Scratch.with_floats 64 (fun buf ->
      Util.check_true "same-size borrow is physically reused" (buf == !first);
      Util.check_true "recycled buffer is re-zeroed"
        (Array.for_all (fun x -> x = 0.0) buf))

let test_scratch_nested_borrows_distinct () =
  Scratch.with_floats 32 (fun outer ->
      Scratch.with_floats 32 (fun inner ->
          Util.check_true "nested same-size borrows are distinct"
            (not (inner == outer))))

let test_scratch_reclaims_on_raise () =
  Scratch.trim ();
  let first = ref [||] in
  (try
     Scratch.with_floats 48 (fun buf ->
         first := buf;
         failwith "boom")
   with Failure _ -> ());
  Scratch.with_floats 48 (fun buf ->
      Util.check_true "buffer reclaimed across raise" (buf == !first))

let test_scratch_trim_and_accounting () =
  Scratch.trim ();
  Alcotest.(check int) "empty after trim" 0 (Scratch.live_words ());
  Scratch.with_floats 128 (fun _ ->
      Util.check_true "borrowed words counted"
        (Scratch.live_words () >= 128));
  Util.check_true "arena retains the freed buffer"
    (Scratch.live_words () >= 128);
  Util.check_true "highwater covers the borrow"
    (Scratch.highwater_words () >= 128);
  Scratch.trim ();
  Alcotest.(check int) "trim drops free buffers" 0 (Scratch.live_words ())

(* ------------------------------------------------------------------ *)
(* Stats and Special *)

let test_stats_basics () =
  let xs = [| 1.0; 2.0; 3.0; 4.0 |] in
  Util.check_float "mean" 2.5 (Stats.mean xs);
  Util.check_close "variance" (5.0 /. 3.0) (Stats.variance xs);
  Util.check_float "median" 2.5 (Stats.median xs);
  Util.check_float "p0" 1.0 (Stats.percentile xs 0.0);
  Util.check_float "p100" 4.0 (Stats.percentile xs 100.0);
  Util.check_close "geomean" (sqrt (sqrt 24.0)) (Stats.geometric_mean xs)

let test_stats_median_odd () =
  Util.check_float "odd median" 3.0 (Stats.median [| 5.0; 1.0; 3.0 |])

let test_special_erf () =
  Util.check_close ~eps:1e-6 "erf 0" 0.0 (Special.erf 0.0);
  Util.check_close ~eps:1e-4 "erf 1" 0.8427 (Special.erf 1.0);
  Util.check_close ~eps:1e-4 "erf -1" (-0.8427) (Special.erf (-1.0));
  Util.check_close ~eps:1e-6 "erf inf" 1.0 (Special.erf 10.0)

let test_special_normal_cdf () =
  Util.check_close ~eps:1e-6 "cdf 0" 0.5 (Special.normal_cdf 0.0);
  Util.check_close ~eps:1e-4 "cdf 1.96" 0.975 (Special.normal_cdf 1.96);
  Util.check_true "monotone"
    (Special.normal_cdf (-1.0) < Special.normal_cdf 1.0)

let test_special_pdf_symmetric () =
  Util.check_close "symmetric" (Special.normal_pdf 1.3) (Special.normal_pdf (-1.3));
  Util.check_close ~eps:1e-9 "peak" (1.0 /. sqrt (2.0 *. Float.pi))
    (Special.normal_pdf 0.0)

let () =
  Alcotest.run "linalg"
    [
      ( "rng",
        [
          Util.case "deterministic streams" test_rng_deterministic;
          Util.case "split independence" test_rng_split_independent;
          Util.case "int range" test_rng_int_range;
          Util.case "float range" test_rng_float_range;
          Util.case "uniform mean" test_rng_uniform_mean;
          Util.case "gaussian moments" test_rng_gaussian_moments;
          Util.case "shuffle is permutation" test_rng_shuffle_permutation;
          Util.case "int rejects bad bound" test_rng_int_rejects_nonpositive;
        ] );
      ( "vec",
        [
          Util.case "basic ops" test_vec_basic_ops;
          Util.case "norms" test_vec_norms;
          Util.case "argmax ties" test_vec_argmax_first_tie;
          Util.case "axpy" test_vec_axpy;
          Util.case "clamp" test_vec_clamp;
          Util.case "relu" test_vec_relu;
          Util.case "dimension mismatch" test_vec_dim_mismatch;
        ] );
      ( "mat",
        [
          Util.case "matvec" test_mat_matvec;
          Util.case "matvec_t" test_mat_matvec_t_is_transpose;
          Util.case "matmul identity" test_mat_matmul_identity;
          Util.case "matmul composition" test_mat_matmul_associative_with_vector;
          Util.case "abs row sums" test_mat_abs_row_sums;
          Util.case "cholesky factorization" test_cholesky_factorizes;
          Util.case "cholesky solve" test_cholesky_solve;
          Util.case "cholesky rejects indefinite" test_cholesky_rejects_indefinite;
        ] );
      ( "gemm",
        [
          Util.case "matches naive oracle" test_gemm_matches_naive;
          Util.case "crosses blocking boundaries" test_gemm_crosses_blocking;
          Util.case "alpha zero scales by beta" test_gemm_alpha_zero_is_beta_scale;
          Util.case "rejects shape mismatch" test_gemm_rejects_mismatch;
          Util.case "matmul routes through gemm" test_mat_matmul_is_gemm;
          Util.case "in-place ops" test_mat_inplace_ops;
        ] );
      ( "gemm-jobs",
        [
          Util.case "bit-identical across jobs" test_gemm_jobs_bit_identical;
          Util.case "degenerate shapes" test_gemm_jobs_degenerate_shapes;
          qcheck_gemm_jobs_identical;
          Util.case "ambient jobs scoped" test_gemm_ambient_jobs_scoped;
        ] );
      ( "scratch",
        [
          Util.case "zero-filled and reused" test_scratch_zero_filled_and_reused;
          Util.case "nested borrows distinct" test_scratch_nested_borrows_distinct;
          Util.case "reclaims on raise" test_scratch_reclaims_on_raise;
          Util.case "trim and accounting" test_scratch_trim_and_accounting;
        ] );
      ( "stats-special",
        [
          Util.case "stats basics" test_stats_basics;
          Util.case "median odd" test_stats_median_odd;
          Util.case "erf" test_special_erf;
          Util.case "normal cdf" test_special_normal_cdf;
          Util.case "normal pdf" test_special_pdf_symmetric;
        ] );
    ]
