open Linalg
open Simplex

(* ------------------------------------------------------------------ *)
(* Tableau-level tests *)

let test_tableau_basic_max () =
  (* max x + y  s.t.  x + 2y <= 4, 3x + y <= 6, x,y >= 0
     optimum 2.8 at (1.6, 1.2). *)
  let constraints =
    [| Tableau.Le ([| 1.0; 2.0 |], 4.0); Tableau.Le ([| 3.0; 1.0 |], 6.0) |]
  in
  match Tableau.maximize ~nvars:2 constraints ~obj:[| 1.0; 1.0 |] () with
  | Tableau.Optimal { x; value } ->
      Util.check_close ~eps:1e-8 "value" 2.8 value;
      Util.check_vec ~eps:1e-8 "point" [| 1.6; 1.2 |] x
  | Tableau.Infeasible | Tableau.Unbounded -> Alcotest.fail "expected optimum"

let test_tableau_unbounded () =
  let constraints = [| Tableau.Le ([| -1.0 |], 0.0) |] in
  match Tableau.maximize ~nvars:1 constraints ~obj:[| 1.0 |] () with
  | Tableau.Unbounded -> ()
  | _ -> Alcotest.fail "expected unbounded"

let test_tableau_infeasible () =
  (* x <= -1 with x >= 0. *)
  let constraints = [| Tableau.Le ([| 1.0 |], -1.0) |] in
  match Tableau.maximize ~nvars:1 constraints ~obj:[| 1.0 |] () with
  | Tableau.Infeasible -> ()
  | _ -> Alcotest.fail "expected infeasible"

let test_tableau_equality () =
  (* max y s.t. x + y = 2, y <= x. Optimum: x = y = 1. *)
  let constraints =
    [| Tableau.Eq ([| 1.0; 1.0 |], 2.0); Tableau.Le ([| -1.0; 1.0 |], 0.0) |]
  in
  match Tableau.maximize ~nvars:2 constraints ~obj:[| 0.0; 1.0 |] () with
  | Tableau.Optimal { x; value } ->
      Util.check_close ~eps:1e-8 "value" 1.0 value;
      Util.check_vec ~eps:1e-8 "point" [| 1.0; 1.0 |] x
  | _ -> Alcotest.fail "expected optimum"

let test_tableau_negative_rhs () =
  (* -x <= -2 means x >= 2; max -x gives x = 2. *)
  let constraints = [| Tableau.Le ([| -1.0 |], -2.0) |] in
  match Tableau.maximize ~nvars:1 constraints ~obj:[| -1.0 |] () with
  | Tableau.Optimal { x; value } ->
      Util.check_close ~eps:1e-8 "value" (-2.0) value;
      Util.check_close ~eps:1e-8 "x" 2.0 x.(0)
  | _ -> Alcotest.fail "expected optimum"

let test_tableau_degenerate_terminates () =
  (* A classically degenerate program (Beale-like); Bland's rule must
     terminate. *)
  let constraints =
    [|
      Tableau.Le ([| 0.25; -8.0; -1.0; 9.0 |], 0.0);
      Tableau.Le ([| 0.5; -12.0; -0.5; 3.0 |], 0.0);
      Tableau.Le ([| 0.0; 0.0; 1.0; 0.0 |], 1.0);
    |]
  in
  match
    Tableau.maximize ~nvars:4 constraints ~obj:[| 0.75; -20.0; 0.5; -6.0 |] ()
  with
  | Tableau.Optimal { value; _ } -> Util.check_close ~eps:1e-6 "beale optimum" 1.25 value
  | _ -> Alcotest.fail "expected optimum"

let test_tableau_should_stop () =
  let constraints =
    Array.init 20 (fun i ->
        Tableau.Le (Vec.init 20 (fun j -> if i = j then 1.0 else 0.1), 1.0))
  in
  Alcotest.check_raises "aborts" Tableau.Aborted (fun () ->
      ignore
        (Tableau.maximize
           ~should_stop:(fun () -> true)
           ~nvars:20 constraints ~obj:(Vec.create 20 1.0) ()))

(* ------------------------------------------------------------------ *)
(* Lp-level tests *)

let test_lp_shifted_bounds () =
  (* min x s.t. x >= -3 with x in [-5, 5]. *)
  let p = Lp.create ~nvars:1 in
  Lp.set_bounds p 0 ~lo:(-5.0) ~hi:5.0;
  Lp.add_ge p [ (0, 1.0) ] (-3.0);
  (match Lp.minimize p [ (0, 1.0) ] with
  | Lp.Optimal { x; value } ->
      Util.check_close ~eps:1e-8 "value" (-3.0) value;
      Util.check_close ~eps:1e-8 "x" (-3.0) x.(0)
  | _ -> Alcotest.fail "expected optimum");
  match Lp.maximize p [ (0, 1.0) ] with
  | Lp.Optimal { value; _ } -> Util.check_close ~eps:1e-8 "max at ub" 5.0 value
  | _ -> Alcotest.fail "expected optimum"

let test_lp_infeasible () =
  let p = Lp.create ~nvars:1 in
  Lp.set_bounds p 0 ~lo:0.0 ~hi:2.0;
  Lp.add_ge p [ (0, 1.0) ] 5.0;
  match Lp.maximize p [ (0, 1.0) ] with
  | Lp.Infeasible -> ()
  | _ -> Alcotest.fail "expected infeasible"

let test_lp_equality_chain () =
  (* y = 2x, z = y + 1, x in [0, 3]; max z = 7. *)
  let p = Lp.create ~nvars:3 in
  Lp.set_bounds p 0 ~lo:0.0 ~hi:3.0;
  Lp.set_bounds p 1 ~lo:(-10.0) ~hi:10.0;
  Lp.set_bounds p 2 ~lo:(-10.0) ~hi:10.0;
  Lp.add_eq p [ (1, 1.0); (0, -2.0) ] 0.0;
  Lp.add_eq p [ (2, 1.0); (1, -1.0) ] 1.0;
  match Lp.maximize p [ (2, 1.0) ] with
  | Lp.Optimal { x; value } ->
      Util.check_close ~eps:1e-8 "value" 7.0 value;
      Util.check_close ~eps:1e-8 "x" 3.0 x.(0)
  | _ -> Alcotest.fail "expected optimum"

let test_lp_pinned_variable () =
  let p = Lp.create ~nvars:2 in
  Lp.set_bounds p 0 ~lo:1.5 ~hi:1.5;
  Lp.set_bounds p 1 ~lo:0.0 ~hi:1.0;
  match Lp.maximize p [ (0, 1.0); (1, 1.0) ] with
  | Lp.Optimal { x; value } ->
      Util.check_close ~eps:1e-8 "value" 2.5 value;
      Util.check_close ~eps:1e-8 "pinned" 1.5 x.(0)
  | _ -> Alcotest.fail "expected optimum"

(* Randomized optimality check: the returned optimum must be feasible
   and dominate random feasible points. *)
let test_lp_random_optimality () =
  Util.repeat ~seed:110 ~count:25 (fun rng _ ->
      let n = 2 + Rng.int rng 3 in
      let p = Lp.create ~nvars:n in
      for i = 0 to n - 1 do
        Lp.set_bounds p i ~lo:(-1.0) ~hi:1.0
      done;
      let rows =
        Array.init (1 + Rng.int rng 3) (fun _ ->
            let coeffs = List.init n (fun j -> (j, Rng.gaussian rng)) in
            let b = Rng.uniform rng ~lo:0.2 ~hi:1.5 in
            Lp.add_le p coeffs b;
            (coeffs, b))
      in
      let obj = List.init n (fun j -> (j, Rng.gaussian rng)) in
      match Lp.maximize p obj with
      | Lp.Unbounded -> Alcotest.fail "bounded by construction"
      | Lp.Infeasible -> () (* possible if rows exclude the whole box *)
      | Lp.Optimal { x; value } ->
          let eval_row coeffs v =
            List.fold_left (fun acc (j, c) -> acc +. (c *. v.(j))) 0.0 coeffs
          in
          (* Feasibility of the optimum. *)
          Array.iter
            (fun (coeffs, b) ->
              Util.check_true "optimum feasible" (eval_row coeffs x <= b +. 1e-6))
            rows;
          Array.iter
            (fun v ->
              Util.check_true "within bounds" (v >= -1.0 -. 1e-7 && v <= 1.0 +. 1e-7))
            x;
          (* Dominance over random feasible points. *)
          for _ = 1 to 50 do
            let cand = Vec.init n (fun _ -> Rng.uniform rng ~lo:(-1.0) ~hi:1.0) in
            let feasible =
              Array.for_all (fun (coeffs, b) -> eval_row coeffs cand <= b) rows
            in
            if feasible then
              Util.check_true "optimum dominates"
                (eval_row obj cand <= value +. 1e-6)
          done)

let () =
  Alcotest.run "simplex"
    [
      ( "tableau",
        [
          Util.case "basic maximization" test_tableau_basic_max;
          Util.case "unbounded detection" test_tableau_unbounded;
          Util.case "infeasible detection" test_tableau_infeasible;
          Util.case "equality constraints" test_tableau_equality;
          Util.case "negative rhs" test_tableau_negative_rhs;
          Util.case "degenerate program terminates" test_tableau_degenerate_terminates;
          Util.case "should_stop aborts" test_tableau_should_stop;
        ] );
      ( "lp",
        [
          Util.case "shifted bounds" test_lp_shifted_bounds;
          Util.case "infeasible" test_lp_infeasible;
          Util.case "equality chain" test_lp_equality_chain;
          Util.case "pinned variable" test_lp_pinned_variable;
          Util.case "random optimality" test_lp_random_optimality;
        ] );
    ]
