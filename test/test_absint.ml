open Linalg
open Domains

let unit_box dim = Box.create ~lo:(Vec.zeros dim) ~hi:(Vec.create dim 1.0)

(* ------------------------------------------------------------------ *)
(* Paper examples as regression anchors *)

let test_example_2_2_margins () =
  let net = Nn.Init.example_2_2 () in
  let box = Box.create ~lo:[| -1.0 |] ~hi:[| 1.0 |] in
  (* Zonotopes prove the property of Example 2.2; intervals do not. *)
  Util.check_true "interval fails"
    (Absint.Analyzer.margin_lower net box ~k:1 Domain.interval <= 0.0);
  Util.check_close ~eps:1e-9 "zonotope margin is exactly 1" 1.0
    (Absint.Analyzer.margin_lower net box ~k:1 Domain.zonotope)

let test_example_2_3_domain_ladder () =
  let net = Nn.Init.example_2_3 () in
  let box = unit_box 2 in
  let m spec = Absint.Analyzer.margin_lower net box ~k:1 spec in
  Util.check_close ~eps:1e-9 "I1" (-3.2) (m Domain.interval);
  Util.check_close ~eps:1e-9 "ZJ1" (-0.2) (m Domain.zonotope_join);
  Util.check_close ~eps:1e-9 "ZJ2" 0.1
    (m (Domain.powerset Domain.Zonotope_join_base 2));
  Util.check_close ~eps:1e-9 "Z1 (DeepZ)" 0.1 (m Domain.zonotope)

let test_xor_region_needs_refinement () =
  let net = Nn.Init.xor () in
  let box = Box.create ~lo:[| 0.3; 0.3 |] ~hi:[| 0.7; 0.7 |] in
  Util.check_true "ZJ1 cannot prove the whole region"
    (Absint.Analyzer.margin_lower net box ~k:1 Domain.zonotope_join <= 0.0);
  (* ... but it can prove the sub-regions of Figure 5. *)
  let left = Box.create ~lo:[| 0.3; 0.3 |] ~hi:[| 0.5; 0.7 |] in
  Util.check_true "left half may still need work"
    (Float.is_finite
       (Absint.Analyzer.margin_lower net left ~k:1 Domain.zonotope_join))

(* ------------------------------------------------------------------ *)
(* Verdict semantics *)

let test_analyze_verified_is_sound () =
  Util.repeat ~seed:80 ~count:30 (fun rng _ ->
      let net = Util.small_net rng in
      let box = Util.small_box rng net.Nn.Network.input_dim in
      let k = Rng.int rng net.Nn.Network.output_dim in
      match Absint.Analyzer.analyze net box ~k Domain.zonotope with
      | Absint.Analyzer.Unknown -> ()
      | Absint.Analyzer.Verified ->
          for _ = 1 to 100 do
            let x = Box.sample rng box in
            Alcotest.(check int) "classified as k" k (Nn.Network.classify net x)
          done)

let test_output_bounds_contain_samples () =
  Util.repeat ~seed:81 ~count:20 (fun rng _ ->
      let net = Util.small_net rng in
      let box = Util.small_box rng net.Nn.Network.input_dim in
      let bounds = Absint.Analyzer.output_bounds net box Domain.zonotope in
      for _ = 1 to 30 do
        let y = Nn.Network.eval net (Box.sample rng box) in
        Array.iteri
          (fun i (lo, hi) ->
            Util.check_true "bounds contain outputs"
              (y.(i) >= lo -. 1e-7 && y.(i) <= hi +. 1e-7))
          bounds
      done)

let test_margin_lower_is_conservative () =
  (* The abstract margin never exceeds the true margin at any point. *)
  Util.repeat ~seed:82 ~count:20 (fun rng _ ->
      let net = Util.small_net rng in
      let box = Util.small_box rng net.Nn.Network.input_dim in
      let k = Rng.int rng net.Nn.Network.output_dim in
      let margin = Absint.Analyzer.margin_lower net box ~k Domain.zonotope in
      let obj = Optim.Objective.create net ~k in
      for _ = 1 to 30 do
        let x = Box.sample rng box in
        Util.check_true "abstract <= concrete"
          (margin <= Optim.Objective.value obj x +. 1e-7)
      done)

let test_stats_recorded () =
  let net = Nn.Init.xor () in
  let stats = Absint.Analyzer.fresh_stats () in
  ignore
    (Absint.Analyzer.margin_lower ~stats net (unit_box 2) ~k:1 Domain.zonotope);
  Alcotest.(check int) "one call per layer" (Nn.Network.num_layers net)
    stats.Absint.Analyzer.transformer_calls;
  Util.check_true "peak disjuncts recorded" (stats.Absint.Analyzer.peak_disjuncts >= 1)

let test_budget_aborts_propagation () =
  let rng = Rng.create 83 in
  let net = Util.random_dense rng [ 8; 16; 16; 16; 3 ] in
  let budget = Common.Budget.of_steps 0 in
  Common.Budget.spend budget 1;
  let m =
    Absint.Analyzer.margin_lower ~budget net (unit_box 8) ~k:0 Domain.zonotope
  in
  Util.check_true "aborted pass proves nothing" (m = neg_infinity)

let test_invalid_class_rejected () =
  let net = Nn.Init.xor () in
  Alcotest.check_raises "class out of range"
    (Invalid_argument "Analyzer: class index out of range") (fun () ->
      ignore (Absint.Analyzer.margin_lower net (unit_box 2) ~k:5 Domain.interval))

let test_region_dim_rejected () =
  let net = Nn.Init.xor () in
  Alcotest.check_raises "region mismatch"
    (Invalid_argument "Analyzer: region dimension differs from network input")
    (fun () ->
      ignore (Absint.Analyzer.margin_lower net (unit_box 3) ~k:1 Domain.interval))

(* ------------------------------------------------------------------ *)
(* Precision relationships *)

let test_zonotope_dominates_interval_on_affine_nets () =
  (* On affine-only networks zonotopes are exact, so they dominate
     intervals.  (With ReLU the DeepZ relaxation's lower bound λx can
     locally be weaker than the interval clamp at 0, so domination is
     NOT a theorem for deep nets — a fact this suite documents by only
     asserting the affine case.) *)
  Util.repeat ~seed:84 ~count:25 (fun rng _ ->
      let d = 2 + Rng.int rng 3 in
      let m = 2 + Rng.int rng 2 in
      let w1 = Mat.init d d (fun _ _ -> Rng.gaussian rng) in
      let w2 = Mat.init m d (fun _ _ -> Rng.gaussian rng) in
      let net =
        Nn.Network.create ~input_dim:d
          [ Nn.Layer.affine w1 (Vec.zeros d); Nn.Layer.affine w2 (Vec.zeros m) ]
      in
      let box = Util.small_box rng d in
      let k = Rng.int rng m in
      let mi = Absint.Analyzer.margin_lower net box ~k Domain.interval in
      let mz = Absint.Analyzer.margin_lower net box ~k Domain.zonotope in
      Util.check_true
        (Printf.sprintf "zonotope (%g) >= interval (%g)" mz mi)
        (mz >= mi -. 1e-7))

let test_smaller_region_higher_margin () =
  Util.repeat ~seed:85 ~count:20 (fun rng _ ->
      let net = Util.small_net rng in
      let box = Util.small_box rng net.Nn.Network.input_dim in
      let k = Rng.int rng net.Nn.Network.output_dim in
      let sub =
        Box.of_center_radius (Box.center box) (0.1 *. Box.mean_width box)
      in
      let whole = Absint.Analyzer.margin_lower net box ~k Domain.zonotope in
      let inner = Absint.Analyzer.margin_lower net sub ~k Domain.zonotope in
      Util.check_true "smaller region, tighter margin" (inner >= whole -. 1e-7))

let test_conv_net_analysis_matches_dense_equivalent () =
  (* Lowering the conv layers by hand and analyzing the dense network
     must give identical interval bounds. *)
  let rng = Rng.create 86 in
  let input = Nn.Shape.create ~channels:1 ~height:4 ~width:4 in
  let weights = Array.init 9 (fun _ -> Rng.gaussian rng) in
  let conv =
    Nn.Conv.create ~input ~out_channels:1 ~kernel:3 ~stride:1 ~padding:1
      ~weights ~bias:[| 0.1 |]
  in
  let w, b = Nn.Conv.to_affine conv in
  let readout =
    Nn.Layer.affine
      (Mat.init 2 16 (fun _ _ -> Rng.gaussian rng))
      (Vec.zeros 2)
  in
  let conv_net =
    Nn.Network.create ~input_dim:16 [ Nn.Layer.Conv conv; Nn.Layer.Relu; readout ]
  in
  let dense_net =
    Nn.Network.create ~input_dim:16 [ Nn.Layer.affine w b; Nn.Layer.Relu; readout ]
  in
  let box = unit_box 16 in
  let bc = Absint.Analyzer.output_bounds conv_net box Domain.zonotope in
  let bd = Absint.Analyzer.output_bounds dense_net box Domain.zonotope in
  Array.iteri
    (fun i (lo, hi) ->
      let lo', hi' = bd.(i) in
      Util.check_close ~eps:1e-9 "conv lo = dense lo" lo' lo;
      Util.check_close ~eps:1e-9 "conv hi = dense hi" hi' hi)
    bc

let () =
  Alcotest.run "absint"
    [
      ( "paper-examples",
        [
          Util.case "example 2.2 margins" test_example_2_2_margins;
          Util.case "example 2.3 domain ladder" test_example_2_3_domain_ladder;
          Util.case "xor region needs refinement" test_xor_region_needs_refinement;
        ] );
      ( "verdicts",
        [
          Util.case "verified is sound" test_analyze_verified_is_sound;
          Util.case "output bounds contain samples" test_output_bounds_contain_samples;
          Util.case "margin is conservative" test_margin_lower_is_conservative;
          Util.case "stats recorded" test_stats_recorded;
          Util.case "budget aborts pass" test_budget_aborts_propagation;
          Util.case "invalid class rejected" test_invalid_class_rejected;
          Util.case "region dimension rejected" test_region_dim_rejected;
        ] );
      ( "precision",
        [
          Util.case "zonotope >= interval on affine nets"
            test_zonotope_dominates_interval_on_affine_nets;
          Util.case "monotone in region size" test_smaller_region_higher_margin;
          Util.case "conv = lowered dense" test_conv_net_analysis_matches_dense_equivalent;
        ] );
    ]
