open Linalg
open Domains

let unit_box dim = Box.create ~lo:(Vec.zeros dim) ~hi:(Vec.create dim 1.0)

(* ------------------------------------------------------------------ *)
(* Encoding *)

let test_encoding_shape () =
  let net = Nn.Init.xor () in
  let enc = Reluplex.Encoding.build net (unit_box 2) in
  (* inputs (2) + z (2) + a (2) + outputs (2). *)
  Alcotest.(check int) "variable count" 8 enc.Reluplex.Encoding.nvars;
  Alcotest.(check int) "relu units" 2 (Array.length enc.Reluplex.Encoding.relus);
  Alcotest.(check int) "inputs" 2 (Array.length enc.Reluplex.Encoding.input_vars);
  Alcotest.(check int) "outputs" 2 (Array.length enc.Reluplex.Encoding.output_vars);
  (* equalities: 2 per affine layer. *)
  Alcotest.(check int) "equalities" 4 (Array.length enc.Reluplex.Encoding.equalities)

let test_encoding_bounds_contain_traces () =
  (* Every variable's interval bound must contain the concrete value
     that variable takes on any execution from the region. *)
  Util.repeat ~seed:130 ~count:15 (fun rng _ ->
      let net = Util.random_dense rng [ 3; 5; 5; 2 ] in
      let box = Util.small_box rng 3 in
      let enc = Reluplex.Encoding.build net box in
      for _ = 1 to 20 do
        let x = Box.sample rng box in
        let trace = Nn.Network.forward_trace net x in
        (* Reconstruct the full variable assignment from the trace:
           input, then per layer alternately pre- and post-activation. *)
        let values = Array.concat (Array.to_list trace |> List.tl |> List.cons x) in
        Array.iteri
          (fun v (lo, hi) ->
            if v < Array.length values then
              Util.check_true
                (Printf.sprintf "var %d: %g in [%g, %g]" v values.(v) lo hi)
                (values.(v) >= lo -. 1e-6 && values.(v) <= hi +. 1e-6))
          enc.Reluplex.Encoding.var_bounds
      done)

let test_encoding_rejects_maxpool () =
  let rng = Rng.create 131 in
  let input = Nn.Shape.create ~channels:1 ~height:4 ~width:4 in
  let net = Nn.Init.lenet_like rng ~input ~classes:3 in
  Alcotest.check_raises "unsupported"
    (Reluplex.Encoding.Unsupported
       "max pooling is not supported by the LP encoding") (fun () ->
      ignore (Reluplex.Encoding.build net (unit_box 16)))

let test_encoding_stable_units () =
  (* A tiny region leaves most units stable. *)
  let rng = Rng.create 132 in
  let net = Util.random_dense rng [ 3; 8; 2 ] in
  let tiny = Box.of_center_radius [| 0.5; 0.5; 0.5 |] 1e-6 in
  let enc = Reluplex.Encoding.build net tiny in
  Util.check_true "most units stable"
    (Reluplex.Encoding.stable_units enc >= 6)

(* ------------------------------------------------------------------ *)
(* The complete checker *)

let test_reluplex_verifies_xor () =
  let net = Nn.Init.xor () in
  let prop =
    Common.Property.create
      ~region:(Box.create ~lo:[| 0.3; 0.3 |] ~hi:[| 0.7; 0.7 |])
      ~target:1 ()
  in
  let report = Reluplex.run net prop in
  Util.check_true "verified" (report.Reluplex.outcome = Common.Outcome.Verified)

let test_reluplex_refutes_xor_negation () =
  let net = Nn.Init.xor () in
  let prop =
    Common.Property.create
      ~region:(Box.create ~lo:[| 0.3; 0.3 |] ~hi:[| 0.7; 0.7 |])
      ~target:0 ()
  in
  match (Reluplex.run net prop).Reluplex.outcome with
  | Common.Outcome.Refuted x ->
      Util.check_true "in region" (Box.contains prop.Common.Property.region x);
      Util.check_true "is a delta-cex"
        (Optim.Objective.is_delta_counterexample
           (Optim.Objective.create net ~k:0)
           ~delta:1e-4 x)
  | _ -> Alcotest.fail "expected refutation"

let test_reluplex_example_2_2 () =
  let net = Nn.Init.example_2_2 () in
  let robust =
    Common.Property.create
      ~region:(Box.create ~lo:[| -1.0 |] ~hi:[| 1.0 |])
      ~target:1 ()
  in
  Util.check_true "verifies [-1,1]"
    ((Reluplex.run net robust).Reluplex.outcome = Common.Outcome.Verified);
  let fragile =
    Common.Property.create
      ~region:(Box.create ~lo:[| -1.0 |] ~hi:[| 2.0 |])
      ~target:1 ()
  in
  match (Reluplex.run net fragile).Reluplex.outcome with
  | Common.Outcome.Refuted x -> Util.check_true "x > 5/3 region" (x.(0) > 1.0)
  | _ -> Alcotest.fail "expected refutation"

let test_reluplex_agrees_with_sampling () =
  Util.repeat ~seed:133 ~count:10 (fun rng _ ->
      let net = Util.random_dense rng [ 2; 4; 2 ] in
      let box = Util.small_box rng 2 in
      let k = Rng.int rng 2 in
      let prop = Common.Property.create ~region:box ~target:k () in
      let report = Reluplex.run ~budget:(Common.Budget.of_seconds 10.0) net prop in
      match report.Reluplex.outcome with
      | Common.Outcome.Verified ->
          Util.check_true "no sampled violation"
            (Common.Property.check_samples rng net prop ~n:500 = None)
      | Common.Outcome.Refuted x ->
          Util.check_true "witness in region" (Box.contains box x);
          Util.check_true "witness is delta-cex"
            (Optim.Objective.is_delta_counterexample
               (Optim.Objective.create net ~k)
               ~delta:1e-4 x)
      | Common.Outcome.Timeout -> ()
      | Common.Outcome.Unknown -> Alcotest.fail "dense nets are supported")

let test_reluplex_completeness_vs_charon () =
  (* On small nets with ample budget, Reluplex and Charon must agree. *)
  Util.repeat ~seed:134 ~count:8 (fun rng _ ->
      let net = Util.random_dense rng [ 2; 5; 2 ] in
      let box = Box.of_center_radius (Box.sample rng (unit_box 2)) 0.2 in
      let k = Rng.int rng 2 in
      let prop = Common.Property.create ~region:box ~target:k () in
      let rp = (Reluplex.run ~budget:(Common.Budget.of_seconds 10.0) net prop).Reluplex.outcome in
      let ch =
        (Charon.Verify.run
           ~budget:(Common.Budget.of_seconds 10.0)
           ~rng ~policy:Charon.Policy.default net prop)
          .Charon.Verify.outcome
      in
      Util.check_true
        (Printf.sprintf "verdicts agree (%s vs %s)" (Common.Outcome.label rp)
           (Common.Outcome.label ch))
        (Common.Outcome.agrees rp ch))

let test_reluplex_unknown_on_maxpool () =
  let rng = Rng.create 135 in
  let input = Nn.Shape.create ~channels:1 ~height:4 ~width:4 in
  let net = Nn.Init.lenet_like rng ~input ~classes:3 in
  let prop = Common.Property.create ~region:(unit_box 16) ~target:0 () in
  Util.check_true "unknown"
    ((Reluplex.run net prop).Reluplex.outcome = Common.Outcome.Unknown)

let test_reluplex_presolve_agrees () =
  (* Presolve must not change verdicts, only (possibly) speed. *)
  Util.repeat ~seed:137 ~count:6 (fun rng _ ->
      let net = Util.random_dense rng [ 2; 5; 2 ] in
      let box = Util.small_box rng 2 in
      let k = Rng.int rng 2 in
      let prop = Common.Property.create ~region:box ~target:k () in
      let plain = (Reluplex.run net prop).Reluplex.outcome in
      let with_presolve =
        (Reluplex.run
           ~config:{ Reluplex.default_config with Reluplex.presolve = true }
           net prop)
          .Reluplex.outcome
      in
      Util.check_true
        (Printf.sprintf "verdicts agree (%s vs %s)"
           (Common.Outcome.label plain)
           (Common.Outcome.label with_presolve))
        (Common.Outcome.agrees plain with_presolve
        && Common.Outcome.is_solved plain
           = Common.Outcome.is_solved with_presolve))

let test_reluplex_respects_budget () =
  let rng = Rng.create 136 in
  let net = Util.random_dense rng [ 6; 24; 24; 3 ] in
  let prop = Common.Property.create ~region:(unit_box 6) ~target:0 () in
  let budget = Common.Budget.of_steps 3 in
  let report = Reluplex.run ~budget net prop in
  match report.Reluplex.outcome with
  | Common.Outcome.Timeout -> Util.check_true "few lp calls" (report.Reluplex.lp_calls <= 4)
  | Common.Outcome.Verified | Common.Outcome.Refuted _ -> ()
  | Common.Outcome.Unknown -> Alcotest.fail "unexpected unknown"

let () =
  Alcotest.run "reluplex"
    [
      ( "encoding",
        [
          Util.case "variable layout" test_encoding_shape;
          Util.case "bounds contain traces" test_encoding_bounds_contain_traces;
          Util.case "rejects maxpool" test_encoding_rejects_maxpool;
          Util.case "stable unit counting" test_encoding_stable_units;
        ] );
      ( "checker",
        [
          Util.case "verifies xor" test_reluplex_verifies_xor;
          Util.case "refutes xor negation" test_reluplex_refutes_xor_negation;
          Util.case "example 2.2 both ways" test_reluplex_example_2_2;
          Util.case "agrees with sampling" test_reluplex_agrees_with_sampling;
          Util.case "agrees with charon" test_reluplex_completeness_vs_charon;
          Util.case "unknown on maxpool" test_reluplex_unknown_on_maxpool;
          Util.case "presolve agrees" test_reluplex_presolve_agrees;
          Util.case "respects budget" test_reluplex_respects_budget;
        ] );
    ]
