(* Differential tests: independent implementations of the same
   semantics must agree (docs/testing.md).

   Four cross-checks, each pairing two code paths that could drift
   apart silently:

   - interval vs zonotope on affine-only networks: with no ReLUs the
     zonotope transformer is exact, so the interval bounds of every
     output must enclose the zonotope bounds.  (On ReLU networks
     neither domain dominates per-coordinate: the DeepZ relaxation
     lets a crossing unit's concretization dip below zero where the
     interval clamps it, so the comparison is only a theorem on the
     affine fragment.);

   - every abstract domain vs concrete execution on ReLU networks: the
     abstract output bounds and the abstract robustness margin must
     enclose what the network actually computes on sampled points —
     the concrete evaluator is the differential oracle that catches an
     unsound transformer in any domain;

   - the bounded powerset functor at one disjunct vs the base domain:
     with no budget to case-split, Powerset.Over(D)(1) must degenerate
     to exactly D's transformers;

   - parallel vs sequential Verify.run: worker count may change which
     witness is found first, but never flip a verdict between Verified
     and Refuted. *)

open Linalg
open Domains

let margin_tol = 1e-9

(* ------------------------------------------------------------------ *)
(* Interval bounds enclose (exact) zonotope bounds on affine networks *)

let random_affine_net rng sizes =
  let rec layers = function
    | a :: (b :: _ as rest) ->
        let w = Mat.init b a (fun _ _ -> Rng.gaussian rng) in
        let bias = Vec.init b (fun _ -> Rng.gaussian rng) in
        Nn.Layer.affine w bias :: layers rest
    | _ -> []
  in
  Nn.Network.create ~input_dim:(List.hd sizes) (layers sizes)

let test_interval_encloses_zonotope_affine () =
  Util.repeat ~seed:31_337 ~count:40 (fun rng _i ->
      let inputs = 2 + Rng.int rng 3 in
      let net = random_affine_net rng [ inputs; 3 + Rng.int rng 4; 2; 3 ] in
      let box = Util.small_box rng inputs in
      let iv = Absint.Analyzer.output_bounds net box Domain.interval in
      let zn = Absint.Analyzer.output_bounds net box Domain.zonotope in
      Array.iteri
        (fun j (ilo, ihi) ->
          let zlo, zhi = zn.(j) in
          if ilo > zlo +. margin_tol || ihi < zhi -. margin_tol then
            Alcotest.failf
              "output %d: interval [%.17g, %.17g] does not enclose zonotope \
               [%.17g, %.17g]"
              j ilo ihi zlo zhi)
        iv;
      let k = Rng.int rng net.Nn.Network.output_dim in
      let im = Absint.Analyzer.margin_lower net box ~k Domain.interval in
      let zm = Absint.Analyzer.margin_lower net box ~k Domain.zonotope in
      if im > zm +. margin_tol then
        Alcotest.failf "interval margin %.17g beats zonotope margin %.17g" im zm)

(* ------------------------------------------------------------------ *)
(* Abstract bounds enclose concrete execution, in every domain *)

let oracle_domains =
  [ Domain.interval; Domain.zonotope; Domain.zonotope_join; Domain.symbolic;
    Domain.powerset Domain.Interval_base 2;
    Domain.powerset Domain.Zonotope_base 2 ]

let test_domains_enclose_concrete () =
  Util.repeat ~seed:31_341 ~count:20 (fun rng _i ->
      let net = Util.small_net rng in
      let box = Util.small_box rng net.Nn.Network.input_dim in
      let k = Rng.int rng net.Nn.Network.output_dim in
      let samples =
        List.init 50 (fun _ -> Nn.Network.eval net (Box.sample rng box))
      in
      List.iter
        (fun spec ->
          let bounds = Absint.Analyzer.output_bounds net box spec in
          let margin = Absint.Analyzer.margin_lower net box ~k spec in
          List.iter
            (fun y ->
              Array.iteri
                (fun j (lo, hi) ->
                  if y.(j) < lo -. margin_tol || y.(j) > hi +. margin_tol then
                    Alcotest.failf
                      "%s: output %d = %.17g escapes [%.17g, %.17g]"
                      (Domain.to_string spec) j y.(j) lo hi)
                bounds;
              let concrete =
                let worst = ref infinity in
                Array.iteri
                  (fun j s -> if j <> k then worst := min !worst (y.(k) -. s))
                  y;
                !worst
              in
              if margin > concrete +. margin_tol then
                Alcotest.failf "%s: margin bound %.17g beats concrete %.17g"
                  (Domain.to_string spec) margin concrete)
            samples)
        oracle_domains)

(* ------------------------------------------------------------------ *)
(* Powerset at one disjunct degenerates to the base domain.

   Domain.get special-cases disjuncts = 1 to the base module, so going
   through specs would compare the base domain with itself.  Apply the
   functor directly instead and push both abstractions through
   Analyzer.propagate with first-class modules. *)

module One = struct
  let max = 1
end

module P_interval = Powerset.Over (Interval) (One)
module P_zonotope = Powerset.Over (Zonotope) (One)

let margin_of (type a) (module D : Domain_sig.S with type t = a) (out : a) ~k =
  let dim = D.dim out in
  let worst = ref infinity in
  for j = 0 to dim - 1 do
    if j <> k then begin
      let coeffs = Vec.init dim (fun i -> if i = k then 1.0 else 0.0) in
      coeffs.(j) <- -1.0;
      worst := min !worst (D.linear_lower out ~coeffs)
    end
  done;
  !worst

let check_powerset_one (type a b)
    (module Base : Domain_sig.S with type t = a)
    (module Pow : Domain_sig.S with type t = b) rng =
  let net = Util.small_net rng in
  let box = Util.small_box rng net.Nn.Network.input_dim in
  let k = Rng.int rng net.Nn.Network.output_dim in
  let base_out = Absint.Analyzer.propagate (module Base) net (Base.of_box box) in
  let pow_out = Absint.Analyzer.propagate (module Pow) net (Pow.of_box box) in
  Alcotest.(check int)
    "a single disjunct" 1
    (Pow.disjuncts pow_out);
  for j = 0 to Base.dim base_out - 1 do
    let blo, bhi = Base.bounds base_out j in
    let plo, phi = Pow.bounds pow_out j in
    Util.check_close ~eps:margin_tol "lower bounds agree" blo plo;
    Util.check_close ~eps:margin_tol "upper bounds agree" bhi phi
  done;
  let bm = margin_of (module Base) base_out ~k in
  let pm = margin_of (module Pow) pow_out ~k in
  Util.check_close ~eps:margin_tol "margins agree" bm pm;
  Util.check_true "verdicts agree" (bm > 0.0 = (pm > 0.0))

let test_powerset_one_interval () =
  Util.repeat ~seed:31_338 ~count:30 (fun rng _i ->
      check_powerset_one (module Interval) (module P_interval) rng)

let test_powerset_one_zonotope () =
  Util.repeat ~seed:31_339 ~count:30 (fun rng _i ->
      check_powerset_one (module Zonotope) (module P_zonotope) rng)

(* ------------------------------------------------------------------ *)
(* Parallel vs sequential verification *)

let test_parallel_matches_sequential () =
  Util.repeat ~seed:31_340 ~count:15 (fun rng i ->
      let net = Util.small_net rng in
      let box = Util.small_box rng net.Nn.Network.input_dim in
      let k = Rng.int rng net.Nn.Network.output_dim in
      let prop = Common.Property.create ~region:box ~target:k () in
      let run workers =
        (Charon.Verify.run
           ~budget:(Common.Budget.of_steps 20_000)
           ~workers ~rng:(Rng.create i) ~policy:Charon.Policy.default net prop)
          .Charon.Verify.outcome
      in
      let seq = run 1 in
      let par = run 4 in
      Util.check_true
        (Printf.sprintf "verdicts agree (%s vs %s)" (Common.Outcome.label seq)
           (Common.Outcome.label par))
        (Common.Outcome.agrees seq par);
      (* Whatever witness the parallel run picks must still satisfy the
         delta-completeness contract. *)
      match par with
      | Common.Outcome.Refuted x ->
          Util.check_true "parallel witness in region" (Box.contains box x);
          Util.check_true "parallel witness is a delta-cex"
            (Optim.Objective.is_delta_counterexample
               (Optim.Objective.create net ~k)
               ~delta:1e-4 x)
      | _ -> ())

let () =
  Alcotest.run "differential"
    [
      ( "domains",
        [
          Util.case "interval encloses zonotope (affine nets)"
            test_interval_encloses_zonotope_affine;
          Util.case "all domains enclose concrete runs"
            test_domains_enclose_concrete;
          Util.case "powerset(1) over intervals = intervals"
            test_powerset_one_interval;
          Util.case "powerset(1) over zonotopes = zonotopes"
            test_powerset_one_zonotope;
        ] );
      ( "verify",
        [
          Util.case "parallel verdicts match sequential"
            test_parallel_matches_sequential;
        ] );
    ]
