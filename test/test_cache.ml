(* Tests for the caching stack introduced with the subregion proof
   cache: the generic LRU (Common.Lru), the canonical split partition
   (Domains.Partition), and the proof cache itself (Charon.Proofcache)
   including its JSONL persistence and its end-to-end behaviour inside
   Verify.run. *)

open Linalg
open Domains

(* ------------------------------------------------------------------ *)
(* Common.Lru *)

let test_lru_rejects_bad_capacity () =
  Alcotest.check_raises "capacity must be positive"
    (Invalid_argument "Lru.create: capacity must be positive") (fun () ->
      ignore (Common.Lru.create ~capacity:0 ()))

let test_lru_eviction_order () =
  let t = Common.Lru.create ~capacity:3 () in
  Util.check_true "no eviction below capacity" (not (Common.Lru.put t "a" 1));
  ignore (Common.Lru.put t "b" 2);
  ignore (Common.Lru.put t "c" 3);
  Alcotest.(check (list string)) "MRU first" [ "c"; "b"; "a" ]
    (Common.Lru.keys t);
  (* Touch "a": it becomes most recent, so "b" is now the LRU victim. *)
  Alcotest.(check (option int)) "get a" (Some 1) (Common.Lru.get t "a");
  Util.check_true "insert at capacity evicts" (Common.Lru.put t "d" 4);
  Alcotest.(check (list string)) "b was evicted" [ "d"; "a"; "c" ]
    (Common.Lru.keys t);
  Alcotest.(check (option int)) "b gone" None (Common.Lru.get t "b");
  Alcotest.(check int) "length" 3 (Common.Lru.length t)

let test_lru_resident_put_never_evicts () =
  let t = Common.Lru.create ~capacity:2 () in
  ignore (Common.Lru.put t "x" 0);
  ignore (Common.Lru.put t "y" 1);
  (* Refreshing a resident key at capacity must not evict anything,
     just update value and recency. *)
  Util.check_true "re-put does not evict" (not (Common.Lru.put t "x" 42));
  Alcotest.(check int) "still full" 2 (Common.Lru.length t);
  Alcotest.(check (list string)) "x refreshed to MRU" [ "x"; "y" ]
    (Common.Lru.keys t);
  Alcotest.(check (option int)) "value updated" (Some 42)
    (Common.Lru.get t "x");
  let s = Common.Lru.stats t in
  Alcotest.(check int) "no evictions" 0 s.Common.Lru.evictions

let test_lru_stats_consistency () =
  let t = Common.Lru.create ~capacity:4 () in
  for i = 0 to 9 do
    ignore (Common.Lru.put t (string_of_int i) i)
  done;
  let hits = ref 0 and misses = ref 0 in
  for i = 0 to 9 do
    match Common.Lru.get t (string_of_int i) with
    | Some v ->
        Alcotest.(check int) "cached value" i v;
        incr hits
    | None -> incr misses
  done;
  let s = Common.Lru.stats t in
  Alcotest.(check int) "hits" !hits s.Common.Lru.hits;
  Alcotest.(check int) "misses" !misses s.Common.Lru.misses;
  Alcotest.(check int) "evictions" 6 s.Common.Lru.evictions;
  Alcotest.(check int) "size" 4 s.Common.Lru.size;
  Alcotest.(check int) "capacity" 4 s.Common.Lru.capacity

let test_lru_concurrent_counters () =
  (* Four domains hammer one table with overlapping key ranges.  The
     structural invariants and the counter bookkeeping must survive:
     size never exceeds capacity, every get is tallied exactly once,
     and evictions = inserts - capacity (no key is ever double-evicted
     or resurrected). *)
  let capacity = 64 in
  let t = Common.Lru.create ~capacity () in
  let per_domain = 2_000 in
  let domains = 4 in
  let worker d () =
    let rng = Rng.create (1000 + d) in
    for i = 1 to per_domain do
      let k = string_of_int (Rng.int rng 200) in
      if i mod 2 = 0 then ignore (Common.Lru.put t k i)
      else ignore (Common.Lru.get t k)
    done
  in
  let spawned =
    List.init domains (fun d -> Stdlib.Domain.spawn (worker d))
  in
  List.iter Stdlib.Domain.join spawned;
  let s = Common.Lru.stats t in
  Alcotest.(check int) "every get tallied"
    (domains * per_domain / 2)
    (s.Common.Lru.hits + s.Common.Lru.misses);
  Util.check_true "size bounded" (s.Common.Lru.size <= capacity);
  Util.check_true "evictions sane"
    (s.Common.Lru.evictions <= domains * per_domain / 2);
  Alcotest.(check int) "keys snapshot agrees with size" s.Common.Lru.size
    (List.length (Common.Lru.keys t))

(* ------------------------------------------------------------------ *)
(* Domains.Partition *)

let test_canonical_cut_basics () =
  Util.check_close ~eps:0.0 "unit interval" 0.5
    (Partition.canonical_cut ~lo:0.0 ~hi:1.0);
  Util.check_close ~eps:0.0 "shifted unit interval snaps to 1" 1.0
    (Partition.canonical_cut ~lo:0.25 ~hi:1.25);
  Util.check_close ~eps:0.0 "negative interval" 0.0
    (Partition.canonical_cut ~lo:(-0.75) ~hi:0.25);
  (* A cut that lands on the zero grid point must be +0.0 bit-exactly,
     never -0.0, or bit-exact keys would split into two. *)
  Alcotest.(check int64) "no negative zero" 0L
    (Int64.bits_of_float (Partition.canonical_cut ~lo:(-1.0) ~hi:0.5));
  Alcotest.check_raises "degenerate interval"
    (Invalid_argument "Partition.canonical_cut: empty interval") (fun () ->
      ignore (Partition.canonical_cut ~lo:1.0 ~hi:1.0))

let test_canonical_cut_properties () =
  (* Randomized contract: the cut is strictly inside, deterministic,
     and — the property the proof cache lives on — every sub-interval
     that still strictly contains the cut agrees on it. *)
  Util.repeat ~seed:2_718 ~count:500 (fun rng _ ->
      let lo = Rng.uniform rng ~lo:(-50.0) ~hi:50.0 in
      let w = 1e-6 +. Rng.float rng 10.0 in
      let hi = lo +. w in
      let cut = Partition.canonical_cut ~lo ~hi in
      Util.check_true "strictly inside" (cut > lo && cut < hi);
      Util.check_close ~eps:0.0 "deterministic" cut
        (Partition.canonical_cut ~lo ~hi);
      (* Shrink toward the cut from both sides; the canonical point of
         the shrunk interval must be the same point. *)
      let lo' = lo +. (0.9 *. (cut -. lo)) in
      let hi' = hi -. (0.9 *. (hi -. cut)) in
      if lo' < cut && cut < hi' then
        Util.check_close ~eps:0.0 "sub-interval agrees" cut
          (Partition.canonical_cut ~lo:lo' ~hi:hi'))

let test_partition_key_bit_exact () =
  let b1 = Box.create ~lo:[| 0.0; -1.0 |] ~hi:[| 1.0; 1.0 |] in
  let b2 = Box.create ~lo:[| 0.0; -1.0 |] ~hi:[| 1.0; 1.0 |] in
  let b3 = Box.create ~lo:[| -0.0; -1.0 |] ~hi:[| 1.0; 1.0 |] in
  Alcotest.(check string) "equal boxes, equal keys" (Partition.key_of_box b1)
    (Partition.key_of_box b2);
  Util.check_true "-0.0 bound is a different key"
    (not (String.equal (Partition.key_of_box b1) (Partition.key_of_box b3)));
  Alcotest.(check int) "16 bytes per dimension" 32
    (String.length (Partition.key_of_box b1))

let test_partition_same_subregion_via_different_queries () =
  (* The point of the canonical partition: two overlapping root boxes,
     split along canonical cuts, reach the *same* subregion — same
     bounds bit-for-bit, hence the same cache key — through different
     split paths. *)
  let split box dim =
    Box.split box ~dim ~at:(Partition.snap_split box ~dim)
  in
  let base = Box.create ~lo:[| 0.0; 0.0 |] ~hi:[| 1.0; 1.0 |] in
  let shifted = Box.create ~lo:[| 0.25; 0.0 |] ~hi:[| 1.25; 1.0 |] in
  (* base:    (0,1)    --cut 0.5--> right half (0.5, 1). *)
  let _, from_base = split base 0 in
  (* shifted: (0.25,1.25) --cut 1--> left (0.25,1) --cut 0.5--> (0.5,1). *)
  let l, _ = split shifted 0 in
  let _, from_shifted = split l 0 in
  Util.check_true "boxes coincide bit-for-bit"
    (Box.equal from_base from_shifted);
  Alcotest.(check string) "and so do their keys"
    (Partition.key_of_box from_base)
    (Partition.key_of_box from_shifted)

(* ------------------------------------------------------------------ *)
(* Charon.Proofcache *)

let xor_net = Nn.Init.xor ()

let mk_key ?(target = 1) ?(delta = 1e-4) net region =
  Charon.Proofcache.key
    ~net_digest:(Charon.Proofcache.net_digest net)
    ~target ~delta ~region

let test_proofcache_keys_separate_facts () =
  let region = Box.create ~lo:[| 0.3; 0.3 |] ~hi:[| 0.7; 0.7 |] in
  let other = Box.create ~lo:[| 0.3; 0.3 |] ~hi:[| 0.7; 0.8 |] in
  let k = mk_key xor_net region in
  Util.check_true "target changes the key"
    (not (String.equal k (mk_key ~target:0 xor_net region)));
  Util.check_true "delta changes the key"
    (not (String.equal k (mk_key ~delta:1e-3 xor_net region)));
  Util.check_true "region changes the key"
    (not (String.equal k (mk_key xor_net other)));
  Util.check_true "network changes the key"
    (not (String.equal k (mk_key (Nn.Init.example_2_3 ()) region)));
  Alcotest.(check string) "same fact, same key" k (mk_key xor_net region)

let test_proofcache_record_lookup_stats () =
  let c = Charon.Proofcache.create ~capacity:8 () in
  let region = Box.create ~lo:[| 0.0; 0.0 |] ~hi:[| 1.0; 1.0 |] in
  let k = mk_key xor_net region in
  Util.check_true "miss before record" (not (Charon.Proofcache.lookup c k));
  Charon.Proofcache.record c k;
  Util.check_true "hit after record" (Charon.Proofcache.lookup c k);
  let s = Charon.Proofcache.stats c in
  Alcotest.(check int) "entries" 1 s.Charon.Proofcache.entries;
  Alcotest.(check int) "lookups" 2 s.Charon.Proofcache.lookups;
  Alcotest.(check int) "hits" 1 s.Charon.Proofcache.hits;
  Alcotest.(check int) "evictions" 0 s.Charon.Proofcache.evictions

let with_temp_journal f =
  let path = Filename.temp_file "charon_proofcache" ".jsonl" in
  Fun.protect ~finally:(fun () -> try Sys.remove path with Sys_error _ -> ())
    (fun () -> f path)

let test_proofcache_persistence_roundtrip () =
  with_temp_journal (fun path ->
      let keys =
        List.init 5 (fun i ->
            mk_key xor_net
              (Box.create ~lo:[| 0.0; 0.0 |]
                 ~hi:[| 1.0; float_of_int (i + 1) |]))
      in
      let c = Charon.Proofcache.create ~capacity:64 ~persist:path () in
      Alcotest.(check int) "fresh journal" 0 (Charon.Proofcache.loaded c);
      List.iter (Charon.Proofcache.record c) keys;
      (* Recording an already-present fact must not duplicate it. *)
      List.iter (Charon.Proofcache.record c) keys;
      Charon.Proofcache.close c;
      let c2 = Charon.Proofcache.create ~capacity:64 ~persist:path () in
      Alcotest.(check int) "all facts replayed" 5
        (Charon.Proofcache.loaded c2);
      List.iter
        (fun k -> Util.check_true "replayed fact hits"
            (Charon.Proofcache.lookup c2 k))
        keys;
      Charon.Proofcache.close c2)

let test_proofcache_journal_skips_garbage () =
  with_temp_journal (fun path ->
      let k = mk_key xor_net (Box.create ~lo:[| 0.0 |] ~hi:[| 1.0 |]) in
      let oc = open_out path in
      output_string oc ("{\"v\":1,\"proved\":\"" ^ k ^ "\"}\n");
      output_string oc "not json at all\n";
      output_string oc "{\"v\":1,\"proved\":\"";
      (* torn final line: no closing quote, no newline *)
      close_out oc;
      let c = Charon.Proofcache.create ~persist:path () in
      Alcotest.(check int) "only the intact line loads" 1
        (Charon.Proofcache.loaded c);
      Util.check_true "intact fact hits" (Charon.Proofcache.lookup c k);
      Charon.Proofcache.close c)

let test_proofcache_warm_rerun_hits_at_root () =
  (* End-to-end: verifying the same property twice against one cache
     must discharge the whole second run from the root fact. *)
  let net = Nn.Init.xor () in
  let region = Box.create ~lo:[| 0.3; 0.3 |] ~hi:[| 0.7; 0.7 |] in
  let prop = Common.Property.create ~region ~target:1 () in
  let cache = Charon.Proofcache.create () in
  let go seed =
    Charon.Verify.run ~proofcache:cache ~rng:(Rng.create seed)
      ~policy:Charon.Policy.default net prop
  in
  let cold = go 1 in
  Util.check_true "cold verifies"
    (cold.Charon.Verify.outcome = Common.Outcome.Verified);
  Alcotest.(check int) "cold run has no hits" 0 cold.Charon.Verify.cache_hits;
  (* A different seed must not matter: proved facts are RNG-independent. *)
  let warm = go 2 in
  Util.check_true "warm verifies"
    (warm.Charon.Verify.outcome = Common.Outcome.Verified);
  Alcotest.(check int) "warm run is one root hit" 1
    warm.Charon.Verify.cache_hits;
  Alcotest.(check int) "warm run explores one node" 1 warm.Charon.Verify.nodes;
  Alcotest.(check int) "warm run never analyzes" 0
    warm.Charon.Verify.analyze_calls

(* ------------------------------------------------------------------ *)
(* Server.Cache over Server.Store — the serve verdict layer *)

let test_verdict_cache_cold_hit_rate () =
  (* Regression: hit_rate divided hits by lookups without guarding the
     cold start, handing nan to the stats JSON before the first get. *)
  let c = Server.Cache.create ~capacity:4 () in
  Util.check_close ~eps:0.0 "0.0 before any lookup" 0.0
    (Server.Cache.hit_rate c);
  ignore (Server.Cache.get c "absent");
  Util.check_close ~eps:0.0 "0.0 after a pure miss" 0.0
    (Server.Cache.hit_rate c);
  Server.Cache.put c "k" Common.Outcome.Verified ~cold_wall:0.5;
  ignore (Server.Cache.get c "k");
  Util.check_close ~eps:1e-9 "hits over lookups" 0.5
    (Server.Cache.hit_rate c)

let test_verdict_store_roundtrip_skips_garbage () =
  with_temp_journal (fun path ->
      let witness = [| 0.5; -0.25 |] in
      let s = Server.Store.create ~path () in
      Server.Store.record s "kv" Common.Outcome.Verified ~cold_wall:1.25;
      Server.Store.record s "kr" (Common.Outcome.Refuted witness)
        ~cold_wall:2.0;
      (* Verdicts are facts: re-recording a present key is a no-op. *)
      Server.Store.record s "kv" Common.Outcome.Verified ~cold_wall:9.0;
      Server.Store.close s;
      (* A crashed writer leaves garbage and a torn tail; both must be
         skipped on replay, not poison the restart. *)
      let oc = open_out_gen [ Open_append ] 0o644 path in
      output_string oc "not json at all\n";
      output_string oc "{\"v\":1,\"key\":\"torn";
      close_out oc;
      let s2 = Server.Store.create ~path () in
      Alcotest.(check int) "both intact facts replayed" 2
        (Server.Store.loaded s2);
      (match Server.Store.find s2 "kv" with
      | Some (Common.Outcome.Verified, w) ->
          Util.check_close ~eps:0.0 "first record's cost wins" 1.25 w
      | _ -> Alcotest.fail "verified fact lost");
      (match Server.Store.find s2 "kr" with
      | Some (Common.Outcome.Refuted x, _) ->
          Alcotest.(check int) "witness dimension" 2 (Array.length x);
          Array.iteri
            (fun i v ->
              Util.check_close ~eps:0.0 "witness bit-exact" witness.(i) v)
            x
      | _ -> Alcotest.fail "refuted fact lost");
      Util.check_true "torn key never loaded"
        (Server.Store.find s2 "torn" = None);
      (* An LRU eviction must fall through to the store: capacity 1,
         two puts, and the evicted verdict still answers. *)
      let c = Server.Cache.create ~capacity:1 ~store:s2 () in
      Server.Cache.put c "a" Common.Outcome.Verified ~cold_wall:0.1;
      Server.Cache.put c "b" Common.Outcome.Verified ~cold_wall:0.2;
      (match Server.Cache.get c "a" with
      | Some (Common.Outcome.Verified, w) ->
          Util.check_close ~eps:0.0 "evicted verdict served from store" 0.1 w
      | _ -> Alcotest.fail "evicted verdict lost");
      Server.Store.close s2)

let () =
  Alcotest.run "cache"
    [
      ( "lru",
        [
          Util.case "rejects bad capacity" test_lru_rejects_bad_capacity;
          Util.case "eviction order" test_lru_eviction_order;
          Util.case "resident re-put never evicts"
            test_lru_resident_put_never_evicts;
          Util.case "stats consistency" test_lru_stats_consistency;
          Util.case "concurrent counters" test_lru_concurrent_counters;
        ] );
      ( "partition",
        [
          Util.case "canonical cut basics" test_canonical_cut_basics;
          Util.case "canonical cut properties" test_canonical_cut_properties;
          Util.case "key is bit-exact" test_partition_key_bit_exact;
          Util.case "same subregion via different queries"
            test_partition_same_subregion_via_different_queries;
        ] );
      ( "proofcache",
        [
          Util.case "keys separate facts" test_proofcache_keys_separate_facts;
          Util.case "record/lookup/stats" test_proofcache_record_lookup_stats;
          Util.case "persistence roundtrip"
            test_proofcache_persistence_roundtrip;
          Util.case "journal skips garbage" test_proofcache_journal_skips_garbage;
          Util.case "warm rerun hits at root"
            test_proofcache_warm_rerun_hits_at_root;
        ] );
      ( "verdicts",
        [
          Util.case "hit rate guarded at cold start"
            test_verdict_cache_cold_hit_rate;
          Util.case "store roundtrip skips garbage"
            test_verdict_store_roundtrip_skips_garbage;
        ] );
    ]
