open Linalg
open Domains

let unit_cube dim = Box.create ~lo:(Vec.zeros dim) ~hi:(Vec.create dim 1.0)

(* ------------------------------------------------------------------ *)
(* Kernel *)

let test_kernel_diag () =
  let k = Bayesopt.Kernel.se ~variance:2.5 ~length:0.7 () in
  Util.check_close "diag = variance" 2.5 (Bayesopt.Kernel.diag k);
  let x = [| 0.1; 0.2 |] in
  Util.check_close "k(x,x) = diag" 2.5 (Bayesopt.Kernel.eval k x x)

let test_kernel_symmetry_and_decay () =
  Util.repeat ~seed:100 (fun rng _ ->
      let k =
        if Rng.bool rng then Bayesopt.Kernel.se ~length:0.5 ()
        else Bayesopt.Kernel.matern52 ~length:0.5 ()
      in
      let x = Vec.init 3 (fun _ -> Rng.gaussian rng) in
      let y = Vec.init 3 (fun _ -> Rng.gaussian rng) in
      Util.check_close ~eps:1e-12 "symmetric" (Bayesopt.Kernel.eval k x y)
        (Bayesopt.Kernel.eval k y x);
      Util.check_true "bounded by diag"
        (Bayesopt.Kernel.eval k x y <= Bayesopt.Kernel.diag k +. 1e-12);
      Util.check_true "positive" (Bayesopt.Kernel.eval k x y > 0.0))

let test_kernel_monotone_in_distance () =
  let k = Bayesopt.Kernel.matern52 ~length:1.0 () in
  let at d = Bayesopt.Kernel.eval k [| 0.0 |] [| d |] in
  Util.check_true "decreasing" (at 0.1 > at 0.5 && at 0.5 > at 2.0)

let test_kernel_gram_psd () =
  (* The Gram matrix plus small jitter must be Cholesky-factorizable. *)
  Util.repeat ~seed:101 ~count:20 (fun rng _ ->
      let k = Bayesopt.Kernel.matern52 ~length:0.4 () in
      let pts = Array.init 8 (fun _ -> Vec.init 2 (fun _ -> Rng.gaussian rng)) in
      let g = Bayesopt.Kernel.gram k pts in
      let jittered = Mat.add g (Mat.scale 1e-8 (Mat.identity 8)) in
      ignore (Mat.cholesky jittered))

let test_kernel_rejects_bad_params () =
  Alcotest.check_raises "bad length"
    (Invalid_argument "Kernel: length scale must be positive") (fun () ->
      ignore (Bayesopt.Kernel.se ~length:0.0 ()))

(* ------------------------------------------------------------------ *)
(* GP *)

let test_gp_interpolates_observations () =
  Util.repeat ~seed:102 ~count:10 (fun rng _ ->
      let inputs = Array.init 6 (fun _ -> Vec.init 2 (fun _ -> Rng.gaussian rng)) in
      let targets = Array.map (fun x -> sin x.(0) +. x.(1)) inputs in
      let gp =
        Bayesopt.Gp.fit ~noise:1e-8
          (Bayesopt.Kernel.se ~length:0.8 ())
          ~inputs ~targets
      in
      Array.iteri
        (fun i x ->
          let mean, variance = Bayesopt.Gp.predict gp x in
          Util.check_close ~eps:1e-3 "interpolates" targets.(i) mean;
          Util.check_true "near-zero variance" (variance < 1e-4))
        inputs)

let test_gp_variance_grows_away_from_data () =
  let inputs = [| [| 0.0 |]; [| 1.0 |] |] in
  let targets = [| 0.0; 1.0 |] in
  let gp =
    Bayesopt.Gp.fit (Bayesopt.Kernel.se ~length:0.3 ()) ~inputs ~targets
  in
  let _, v_near = Bayesopt.Gp.predict gp [| 0.5 |] in
  let _, v_far = Bayesopt.Gp.predict gp [| 5.0 |] in
  Util.check_true "more uncertain far away" (v_far > v_near)

let test_gp_prior_variance_far_away () =
  (* Far from all data the posterior reverts to the prior scale. *)
  let inputs = [| [| 0.0 |] |] and targets = [| 3.0 |] in
  let gp =
    Bayesopt.Gp.fit (Bayesopt.Kernel.se ~length:0.2 ()) ~inputs ~targets
  in
  let mean, _ = Bayesopt.Gp.predict gp [| 100.0 |] in
  (* Standardization makes a single observation have mean = target. *)
  Util.check_close ~eps:1e-6 "reverts to data mean" 3.0 mean

let test_gp_duplicate_points_survive () =
  (* Duplicate inputs make the Gram matrix singular; jitter escalation
     must still produce a usable fit. *)
  let inputs = [| [| 0.5 |]; [| 0.5 |]; [| 1.0 |] |] in
  let targets = [| 1.0; 1.0; 2.0 |] in
  let gp =
    Bayesopt.Gp.fit ~noise:0.0 (Bayesopt.Kernel.se ~length:0.5 ()) ~inputs
      ~targets
  in
  let mean, _ = Bayesopt.Gp.predict gp [| 0.5 |] in
  Util.check_close ~eps:0.05 "sane prediction" 1.0 mean

let test_gp_log_marginal_likelihood_finite () =
  let rng = Rng.create 103 in
  let inputs = Array.init 10 (fun _ -> Vec.init 2 (fun _ -> Rng.gaussian rng)) in
  let targets = Array.map (fun x -> x.(0) *. x.(1)) inputs in
  let gp =
    Bayesopt.Gp.fit (Bayesopt.Kernel.matern52 ~length:0.5 ()) ~inputs ~targets
  in
  Util.check_true "finite lml"
    (Float.is_finite (Bayesopt.Gp.log_marginal_likelihood gp));
  Alcotest.(check int) "observation count" 10 (Bayesopt.Gp.num_observations gp)

let test_gp_rejects_empty () =
  Alcotest.check_raises "no observations" (Invalid_argument "Gp.fit: no observations")
    (fun () ->
      ignore
        (Bayesopt.Gp.fit (Bayesopt.Kernel.se ~length:1.0 ()) ~inputs:[||]
           ~targets:[||]))

(* ------------------------------------------------------------------ *)
(* Acquisition *)

let test_ei_nonnegative () =
  Util.repeat ~seed:104 (fun rng _ ->
      let ei =
        Bayesopt.Acquisition.expected_improvement ~best:(Rng.gaussian rng)
          ~mean:(Rng.gaussian rng)
          ~variance:(abs_float (Rng.gaussian rng))
          ()
      in
      Util.check_true "EI >= 0" (ei >= 0.0))

let test_ei_zero_without_variance () =
  Util.check_close "no variance, no improvement" 0.0
    (Bayesopt.Acquisition.expected_improvement ~best:1.0 ~mean:5.0 ~variance:0.0 ())

let test_ei_prefers_higher_mean () =
  let ei mean =
    Bayesopt.Acquisition.expected_improvement ~best:0.0 ~mean ~variance:1.0 ()
  in
  Util.check_true "monotone in mean" (ei 1.0 > ei 0.0 && ei 0.0 > ei (-1.0))

let test_ei_prefers_uncertainty_below_best () =
  let ei v =
    Bayesopt.Acquisition.expected_improvement ~best:2.0 ~mean:0.0 ~variance:v ()
  in
  Util.check_true "exploration bonus" (ei 4.0 > ei 0.25)

let test_ucb () =
  Util.check_close "ucb formula" 3.0
    (Bayesopt.Acquisition.upper_confidence_bound ~beta:2.0 ~mean:1.0 ~variance:1.0 ())

(* ------------------------------------------------------------------ *)
(* Latin hypercube *)

let test_latin_stratification () =
  Util.repeat ~seed:105 ~count:10 (fun rng _ ->
      let n = 2 + Rng.int rng 10 in
      let box = unit_cube 3 in
      let pts = Bayesopt.Latin.sample rng box ~n in
      Alcotest.(check int) "count" n (Array.length pts);
      (* In each dimension, each of the n strata holds exactly one point. *)
      for d = 0 to 2 do
        let seen = Array.make n false in
        Array.iter
          (fun p ->
            let s =
              Stdlib.min (n - 1) (int_of_float (p.(d) *. float_of_int n))
            in
            Util.check_true "stratum not repeated" (not seen.(s));
            seen.(s) <- true)
          pts
      done)

let test_latin_inside_box () =
  Util.repeat ~seed:106 ~count:10 (fun rng _ ->
      let box = Util.small_box rng 4 in
      Array.iter
        (fun p -> Util.check_true "inside" (Box.contains box p))
        (Bayesopt.Latin.sample rng box ~n:7))

(* ------------------------------------------------------------------ *)
(* Bopt *)

let test_bopt_finds_quadratic_optimum () =
  let box = Box.create ~lo:[| -2.0; -2.0 |] ~hi:[| 2.0; 2.0 |] in
  let f x = -.((x.(0) -. 0.7) ** 2.0) -. ((x.(1) +. 0.3) ** 2.0) in
  let result = Bayesopt.Bopt.maximize ~rng:(Rng.create 107) box f in
  let best = result.Bayesopt.Bopt.best in
  Util.check_true
    (Printf.sprintf "found value %.3f near optimum 0" best.Bayesopt.Bopt.value)
    (best.Bayesopt.Bopt.value > -0.1)

let test_bopt_beats_its_own_seeds () =
  (* The acquisition-driven phase should improve on pure seeding. *)
  let box = unit_cube 3 in
  let f x = -.Vec.norm2 (Vec.sub x [| 0.2; 0.8; 0.5 |]) in
  let config =
    { Bayesopt.Bopt.default_config with Bayesopt.Bopt.init_samples = 6; iterations = 20 }
  in
  let result = Bayesopt.Bopt.maximize ~config ~rng:(Rng.create 108) box f in
  let history = Array.of_list result.Bayesopt.Bopt.history in
  let seed_best = ref neg_infinity in
  for i = 0 to 5 do
    seed_best := Stdlib.max !seed_best history.(i).Bayesopt.Bopt.value
  done;
  Util.check_true "improved past seeding"
    (result.Bayesopt.Bopt.best.Bayesopt.Bopt.value >= !seed_best);
  Alcotest.(check int) "evaluation budget respected" 26 (Array.length history)

let test_bopt_deterministic () =
  let box = unit_cube 2 in
  let f x = sin (3.0 *. x.(0)) +. cos (2.0 *. x.(1)) in
  let run () =
    (Bayesopt.Bopt.maximize ~rng:(Rng.create 109) box f).Bayesopt.Bopt.best
  in
  let a = run () and b = run () in
  Util.check_close ~eps:0.0 "same value" a.Bayesopt.Bopt.value b.Bayesopt.Bopt.value;
  Util.check_vec ~eps:0.0 "same point" a.Bayesopt.Bopt.point b.Bayesopt.Bopt.point

let () =
  Alcotest.run "bayesopt"
    [
      ( "kernel",
        [
          Util.case "diagonal" test_kernel_diag;
          Util.case "symmetry and decay" test_kernel_symmetry_and_decay;
          Util.case "monotone in distance" test_kernel_monotone_in_distance;
          Util.case "gram is psd" test_kernel_gram_psd;
          Util.case "rejects bad params" test_kernel_rejects_bad_params;
        ] );
      ( "gp",
        [
          Util.case "interpolates observations" test_gp_interpolates_observations;
          Util.case "variance grows off-data" test_gp_variance_grows_away_from_data;
          Util.case "reverts to mean far away" test_gp_prior_variance_far_away;
          Util.case "survives duplicate points" test_gp_duplicate_points_survive;
          Util.case "finite log marginal likelihood" test_gp_log_marginal_likelihood_finite;
          Util.case "rejects empty" test_gp_rejects_empty;
        ] );
      ( "acquisition",
        [
          Util.case "EI nonnegative" test_ei_nonnegative;
          Util.case "EI zero without variance" test_ei_zero_without_variance;
          Util.case "EI monotone in mean" test_ei_prefers_higher_mean;
          Util.case "EI exploration bonus" test_ei_prefers_uncertainty_below_best;
          Util.case "UCB formula" test_ucb;
        ] );
      ( "latin",
        [
          Util.case "stratification" test_latin_stratification;
          Util.case "inside box" test_latin_inside_box;
        ] );
      ( "bopt",
        [
          Util.case "finds quadratic optimum" test_bopt_finds_quadratic_optimum;
          Util.case "improves past seeding" test_bopt_beats_its_own_seeds;
          Util.case "deterministic" test_bopt_deterministic;
        ] );
    ]
