(* charon-lint (lib/lint) against the fixture mini-repo in
   fixtures/lint/mini: every rule — syntactic and interprocedural race
   — has a known-bad file that must be flagged and a known-good twin
   that must stay clean, plus [@lint.allow] suppression, pass/rule
   filtering, --json round-trip, docs sync, and an annotation-strip
   check against the real lib/parallel/kpool.ml. *)

open Charon_lint

let fixture_root = "fixtures/lint/mini"

(* One lint run shared by all cases. *)
let result =
  lazy (Driver.lint ~root:fixture_root ~paths:[ "lib"; "bin" ] ())

let findings_in file rule =
  List.filter
    (fun (d : Diagnostic.t) -> d.Diagnostic.file = file && d.Diagnostic.rule = rule)
    (Lazy.force result).Driver.findings

let check_flagged ~file ~rule ~at_least =
  let hits = findings_in file rule in
  if List.length hits < at_least then
    Alcotest.failf "expected >= %d %s findings in %s, got %d" at_least rule
      file (List.length hits)

let check_line ~file ~rule ~line =
  let hits = findings_in file rule in
  if not (List.exists (fun (d : Diagnostic.t) -> d.Diagnostic.line = line) hits)
  then
    Alcotest.failf "expected a %s finding in %s at line %d, got lines [%s]"
      rule file line
      (String.concat "; "
         (List.map
            (fun (d : Diagnostic.t) -> string_of_int d.Diagnostic.line)
            hits))

let test_parses_fixture_tree () =
  let r = Lazy.force result in
  Alcotest.(check (list (pair string string))) "no parse errors" []
    r.Driver.errors;
  (* parallel/pool, worker/bad_* x12 + suppressed + good_race,
     solo/good, bin/main *)
  Alcotest.(check int) "files scanned" 17 r.Driver.files_scanned

let test_poly_compare () =
  check_flagged ~file:"lib/worker/bad_poly.ml" ~rule:"poly-compare"
    ~at_least:4;
  (* The mifgsm-style bug shape: [compare x 0.5] on line 3. *)
  match findings_in "lib/worker/bad_poly.ml" "poly-compare" with
  | d :: _ -> Alcotest.(check int) "first finding line" 3 d.Diagnostic.line
  | [] -> Alcotest.fail "no poly-compare findings"

let test_float_eq () =
  check_flagged ~file:"lib/worker/bad_float_eq.ml" ~rule:"float-eq"
    ~at_least:3

let test_float_array_eq () =
  (* = / <> whose operands are arrays of floats route to poly-compare
     (the Box.equal bug shape); all four spellings in the fixture —
     literal, Array.make, float array annotation, Vec.t alias — must
     fire, and none of them double-report under float-eq. *)
  check_flagged ~file:"lib/worker/bad_float_array_eq.ml" ~rule:"poly-compare"
    ~at_least:4;
  Alcotest.(check int)
    "no float-eq findings on array operands" 0
    (List.length (findings_in "lib/worker/bad_float_array_eq.ml" "float-eq"))

let test_domain_unsafe_global () =
  (* Two toplevel bindings plus the mutable type declaration. *)
  check_flagged ~file:"lib/worker/bad_global.ml" ~rule:"domain-unsafe-global"
    ~at_least:3

let test_unsafe_array () =
  check_flagged ~file:"lib/worker/bad_unsafe.ml" ~rule:"unsafe-array"
    ~at_least:2

let test_catch_all () =
  check_flagged ~file:"lib/worker/bad_catch.ml" ~rule:"catch-all-exn"
    ~at_least:2

let test_printf_in_lib () =
  check_flagged ~file:"lib/worker/bad_printf.ml" ~rule:"printf-in-lib"
    ~at_least:2

(* --- the interprocedural race pass, one seeded fixture per rule --- *)

let test_race_unguarded_global () =
  (* [record] is reachable from the Pool.run closure in [launch]; the
     Hashtbl access inside it is the finding, at its own line. *)
  check_flagged ~file:"lib/worker/bad_race_global.ml"
    ~rule:"race-unguarded-global" ~at_least:1;
  check_line ~file:"lib/worker/bad_race_global.ml"
    ~rule:"race-unguarded-global" ~line:7

let test_race_wrong_mutex () =
  (* [bump] holds nothing (line 9), [bump_wrong] holds the wrong mutex
     (line 13); [bump_locked] holds t.mutex and must not be flagged. *)
  check_flagged ~file:"lib/worker/bad_race_mutex.ml" ~rule:"race-wrong-mutex"
    ~at_least:2;
  check_line ~file:"lib/worker/bad_race_mutex.ml" ~rule:"race-wrong-mutex"
    ~line:9;
  check_line ~file:"lib/worker/bad_race_mutex.ml" ~rule:"race-wrong-mutex"
    ~line:13;
  if
    List.exists
      (fun (d : Diagnostic.t) -> d.Diagnostic.line > 15)
      (findings_in "lib/worker/bad_race_mutex.ml" "race-wrong-mutex")
  then Alcotest.fail "bump_locked (correctly locked) was flagged"

let test_race_captured_escape () =
  check_flagged ~file:"lib/worker/bad_race_capture.ml"
    ~rule:"race-captured-escape" ~at_least:1;
  check_line ~file:"lib/worker/bad_race_capture.ml"
    ~rule:"race-captured-escape" ~line:7

let test_race_locked_caller () =
  (* [poke] calls the [@race.locked "m"] function without the mutex;
     [poke_locked] holds it and must stay clean. *)
  check_flagged ~file:"lib/worker/bad_race_locked.ml"
    ~rule:"race-locked-caller" ~at_least:1;
  check_line ~file:"lib/worker/bad_race_locked.ml" ~rule:"race-locked-caller"
    ~line:8;
  Alcotest.(check int)
    "poke_locked not flagged" 1
    (List.length (findings_in "lib/worker/bad_race_locked.ml" "race-locked-caller"))

let test_race_bad_annotation () =
  (* atomic claim on a ref, a never-acquired guard, read_only on a
     type declaration. *)
  check_flagged ~file:"lib/worker/bad_race_annot.ml"
    ~rule:"race-bad-annotation" ~at_least:3

let test_good_twins_clean () =
  List.iter
    (fun (d : Diagnostic.t) ->
      if
        d.Diagnostic.file = "lib/solo/good.ml"
        || d.Diagnostic.file = "lib/worker/good_race.ml"
        || d.Diagnostic.file = "bin/main.ml"
      then
        Alcotest.failf "good twin flagged: %s" (Diagnostic.to_string d))
    ((Lazy.force result).Driver.findings
    @ (Lazy.force result).Driver.suppressed)

let test_every_rule_has_bad_and_good () =
  (* The acceptance bar: each registered rule — across both passes —
     fires somewhere in the fixture tree and never on the good twins
     (checked above). *)
  let flagged_rules =
    List.sort_uniq String.compare
      (List.map
         (fun (d : Diagnostic.t) -> d.Diagnostic.rule)
         ((Lazy.force result).Driver.findings
         @ (Lazy.force result).Driver.suppressed))
  in
  List.iter
    (fun id ->
      if not (List.mem id flagged_rules) then
        Alcotest.failf "rule %s never fired on the fixture tree" id)
    (Driver.rule_ids ())

let test_suppression () =
  let r = Lazy.force result in
  let in_suppressed_file (d : Diagnostic.t) =
    d.Diagnostic.file = "lib/worker/suppressed.ml"
  in
  List.iter
    (fun d ->
      if in_suppressed_file d then
        Alcotest.failf "annotated finding not suppressed: %s"
          (Diagnostic.to_string d))
    r.Driver.findings;
  let audit = List.filter in_suppressed_file r.Driver.suppressed in
  let rules =
    List.sort_uniq String.compare
      (List.map (fun (d : Diagnostic.t) -> d.Diagnostic.rule) audit)
  in
  Alcotest.(check (list string))
    "suppressed audit trail keeps the diagnostics"
    [ "domain-unsafe-global"; "float-eq"; "poly-compare" ]
    rules

let test_exit_semantics () =
  let r = Lazy.force result in
  Util.check_true "fixture tree is not clean" (not (Driver.clean r));
  let clean =
    Driver.lint ~root:fixture_root ~paths:[ "lib/solo"; "bin" ] ()
  in
  Util.check_true "good-only subtree is clean" (Driver.clean clean)

(* --- pass and rule selection --- *)

let is_race_rule id =
  String.length id >= 5 && String.sub id 0 5 = "race-"

let test_pass_selection () =
  let syn =
    Driver.lint ~passes:[ Driver.Syntactic ] ~root:fixture_root
      ~paths:[ "lib"; "bin" ] ()
  in
  List.iter
    (fun (d : Diagnostic.t) ->
      if is_race_rule d.Diagnostic.rule then
        Alcotest.failf "race finding under --pass syntactic: %s"
          (Diagnostic.to_string d))
    syn.Driver.findings;
  let race =
    Driver.lint ~passes:[ Driver.Race ] ~root:fixture_root
      ~paths:[ "lib"; "bin" ] ()
  in
  Util.check_true "race pass has findings" (race.Driver.findings <> []);
  List.iter
    (fun (d : Diagnostic.t) ->
      if not (is_race_rule d.Diagnostic.rule) then
        Alcotest.failf "syntactic finding under --pass race: %s"
          (Diagnostic.to_string d))
    race.Driver.findings;
  (* Both passes together partition the default run. *)
  Alcotest.(check int)
    "syntactic + race = all"
    (List.length (Lazy.force result).Driver.findings)
    (List.length syn.Driver.findings + List.length race.Driver.findings)

let test_only_exclude () =
  let only =
    Driver.lint ~only:[ "race-captured-escape" ] ~root:fixture_root
      ~paths:[ "lib"; "bin" ] ()
  in
  Util.check_true "--only keeps the selected rule"
    (only.Driver.findings <> []);
  List.iter
    (fun (d : Diagnostic.t) ->
      Alcotest.(check string)
        "--only filters to the rule" "race-captured-escape"
        d.Diagnostic.rule)
    only.Driver.findings;
  let excl =
    Driver.lint ~exclude:[ "race-captured-escape" ] ~root:fixture_root
      ~paths:[ "lib"; "bin" ] ()
  in
  if
    List.exists
      (fun (d : Diagnostic.t) -> d.Diagnostic.rule = "race-captured-escape")
      excl.Driver.findings
  then Alcotest.fail "--exclude left the excluded rule in";
  Alcotest.(check int)
    "only + exclude = all"
    (List.length (Lazy.force result).Driver.findings)
    (List.length only.Driver.findings + List.length excl.Driver.findings)

let test_json_roundtrip () =
  let r = Lazy.force result in
  let j = Util.Json.parse (Driver.render_json r) in
  Alcotest.(check string)
    "tool" "charon-lint"
    Util.Json.(to_string (member "tool" j));
  Alcotest.(check int)
    "files" r.Driver.files_scanned
    Util.Json.(to_int (member "files" j));
  let findings = Util.Json.(to_list (member "findings" j)) in
  Alcotest.(check int)
    "findings count" (List.length r.Driver.findings)
    (List.length findings);
  List.iter2
    (fun (d : Diagnostic.t) jd ->
      Alcotest.(check string)
        "finding file" d.Diagnostic.file
        Util.Json.(to_string (member "file" jd));
      Alcotest.(check int)
        "finding line" d.Diagnostic.line
        Util.Json.(to_int (member "line" jd));
      Alcotest.(check string)
        "finding rule" d.Diagnostic.rule
        Util.Json.(to_string (member "rule" jd)))
    r.Driver.findings findings;
  Alcotest.(check int)
    "suppressed count" (List.length r.Driver.suppressed)
    (List.length Util.Json.(to_list (member "suppressed" j)))

let test_json_race_findings () =
  (* Race findings survive the --json round trip with the same schema
     as syntactic ones. *)
  let race =
    Driver.lint ~passes:[ Driver.Race ] ~root:fixture_root
      ~paths:[ "lib"; "bin" ] ()
  in
  let j = Util.Json.parse (Driver.render_json race) in
  let findings = Util.Json.(to_list (member "findings" j)) in
  Util.check_true "race findings present in json" (findings <> []);
  List.iter
    (fun jd ->
      Util.check_true "race rule id in json"
        (is_race_rule Util.Json.(to_string (member "rule" jd))))
    findings

let contains ~sub s =
  let n = String.length s and m = String.length sub in
  let rec go i = i + m <= n && (String.sub s i m = sub || go (i + 1)) in
  go 0

let test_render_text () =
  let r = Lazy.force result in
  let text = Driver.render_text ~show_suppressed:true r in
  Util.check_true "mentions a finding" (contains ~sub:"bad_poly.ml" text);
  Util.check_true "mentions a race finding"
    (contains ~sub:"race-wrong-mutex" text);
  Util.check_true "mentions the audit trail"
    (contains ~sub:"suppressed.ml" text)

(* --- docs stay in sync with the registry --- *)

let read_file path =
  let ic = open_in_bin path in
  let n = in_channel_length ic in
  let s = really_input_string ic n in
  close_in ic;
  s

let test_docs_in_sync () =
  (* Every rule id has a `### \`rule-id\`` section in docs/lint.md and
     every such section names a registered rule, so --list-rules and
     the docs cannot drift apart. *)
  let doc = read_file "../docs/lint.md" in
  let documented = ref [] in
  List.iter
    (fun line ->
      let prefix = "### `" in
      let pl = String.length prefix in
      if
        String.length line > pl
        && String.sub line 0 pl = prefix
        && String.contains_from line pl '`'
      then
        let stop = String.index_from line pl '`' in
        documented := String.sub line pl (stop - pl) :: !documented)
    (String.split_on_char '\n' doc);
  let documented = List.sort_uniq String.compare !documented in
  let registered = List.sort_uniq String.compare (Driver.rule_ids ()) in
  Alcotest.(check (list string))
    "docs/lint.md sections match --list-rules" registered documented

(* --- stripping any kpool annotation reproduces a finding --- *)

let write_file path s =
  let oc = open_out_bin path in
  output_string oc s;
  close_out oc

let rec rm_rf path =
  if Sys.is_directory path then begin
    Array.iter (fun e -> rm_rf (Filename.concat path e)) (Sys.readdir path);
    Sys.rmdir path
  end
  else Sys.remove path

let race_attr_spans src =
  (* Occurrences of [@race....] / [@@race....] including the closing
     bracket (the payloads are string literals with no nested ']'). *)
  let n = String.length src in
  let starts_at i p =
    i + String.length p <= n && String.sub src i (String.length p) = p
  in
  let spans = ref [] in
  let i = ref 0 in
  while !i < n do
    let at = !i in
    if starts_at at "[@race." || starts_at at "[@@race." then begin
      let stop = String.index_from src at ']' in
      spans := (at, stop + 1) :: !spans;
      i := stop + 1
    end
    else incr i
  done;
  List.rev !spans

let test_kpool_annotations_load_bearing () =
  (* The real lib/parallel/kpool.ml is the flagship annotated module:
     deleting any single [@race.*] annotation must reproduce at least
     one finding when the file is linted standalone, proving the
     annotations are machine-checked claims rather than decoration. *)
  let src = read_file "../lib/parallel/kpool.ml" in
  let spans = race_attr_spans src in
  Util.check_true "kpool has race annotations" (List.length spans >= 4);
  let tmp =
    Filename.concat (Filename.get_temp_dir_name ())
      (Printf.sprintf "charon_lint_strip_%d" (Unix.getpid ()))
  in
  let dir = Filename.concat tmp "lib/parallel" in
  List.iteri
    (fun k (a, b) ->
      if Sys.file_exists tmp then rm_rf tmp;
      ignore (Sys.command (Printf.sprintf "mkdir -p %s" (Filename.quote dir)));
      write_file (Filename.concat dir "dune") "(library\n (name parallel))\n";
      let stripped =
        String.sub src 0 a ^ String.sub src b (String.length src - b)
      in
      write_file (Filename.concat dir "kpool.ml") stripped;
      let r = Driver.lint ~root:tmp ~paths:[ "lib" ] () in
      Alcotest.(check (list (pair string string)))
        "stripped kpool still parses" [] r.Driver.errors;
      if r.Driver.findings = [] then
        Alcotest.failf
          "stripping kpool annotation %d (%s) produced no finding" k
          (String.sub src a (b - a)))
    spans;
  if Sys.file_exists tmp then rm_rf tmp

let () =
  Alcotest.run "lint"
    [
      ( "driver",
        [
          Util.case "parses fixture tree" test_parses_fixture_tree;
          Util.case "exit semantics" test_exit_semantics;
          Util.case "pass selection" test_pass_selection;
          Util.case "--only / --exclude" test_only_exclude;
          Util.case "render text" test_render_text;
        ] );
      ( "rules",
        [
          Util.case "poly-compare" test_poly_compare;
          Util.case "float-eq" test_float_eq;
          Util.case "float-array poly-compare" test_float_array_eq;
          Util.case "domain-unsafe-global" test_domain_unsafe_global;
          Util.case "unsafe-array" test_unsafe_array;
          Util.case "catch-all-exn" test_catch_all;
          Util.case "printf-in-lib" test_printf_in_lib;
          Util.case "good twins clean" test_good_twins_clean;
          Util.case "every rule fires" test_every_rule_has_bad_and_good;
        ] );
      ( "race",
        [
          Util.case "race-unguarded-global" test_race_unguarded_global;
          Util.case "race-wrong-mutex" test_race_wrong_mutex;
          Util.case "race-captured-escape" test_race_captured_escape;
          Util.case "race-locked-caller" test_race_locked_caller;
          Util.case "race-bad-annotation" test_race_bad_annotation;
          Util.case "kpool annotations load-bearing"
            test_kpool_annotations_load_bearing;
        ] );
      ( "suppression",
        [ Util.case "allow attribute" test_suppression ] );
      ( "json",
        [
          Util.case "roundtrip" test_json_roundtrip;
          Util.case "race findings" test_json_race_findings;
        ] );
      ( "docs", [ Util.case "rules documented" test_docs_in_sync ] );
    ]
