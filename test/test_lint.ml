(* charon-lint (lib/lint) against the fixture mini-repo in
   fixtures/lint/mini: every rule has a known-bad file that must be
   flagged and a known-good twin that must stay clean, plus
   [@lint.allow] suppression and --json round-trip checks. *)

open Charon_lint

let fixture_root = "fixtures/lint/mini"

(* One lint run shared by all cases. *)
let result =
  lazy (Driver.lint ~root:fixture_root ~paths:[ "lib"; "bin" ] ())

let findings_in file rule =
  List.filter
    (fun (d : Diagnostic.t) -> d.Diagnostic.file = file && d.Diagnostic.rule = rule)
    (Lazy.force result).Driver.findings

let check_flagged ~file ~rule ~at_least =
  let hits = findings_in file rule in
  if List.length hits < at_least then
    Alcotest.failf "expected >= %d %s findings in %s, got %d" at_least rule
      file (List.length hits)

let test_parses_fixture_tree () =
  let r = Lazy.force result in
  Alcotest.(check (list (pair string string))) "no parse errors" []
    r.Driver.errors;
  (* parallel/pool, worker/bad_* x7 + suppressed, solo/good, bin/main *)
  Alcotest.(check int) "files scanned" 11 r.Driver.files_scanned

let test_poly_compare () =
  check_flagged ~file:"lib/worker/bad_poly.ml" ~rule:"poly-compare"
    ~at_least:4;
  (* The mifgsm-style bug shape: [compare x 0.5] on line 3. *)
  match findings_in "lib/worker/bad_poly.ml" "poly-compare" with
  | d :: _ -> Alcotest.(check int) "first finding line" 3 d.Diagnostic.line
  | [] -> Alcotest.fail "no poly-compare findings"

let test_float_eq () =
  check_flagged ~file:"lib/worker/bad_float_eq.ml" ~rule:"float-eq"
    ~at_least:3

let test_float_array_eq () =
  (* = / <> whose operands are arrays of floats route to poly-compare
     (the Box.equal bug shape); all four spellings in the fixture —
     literal, Array.make, float array annotation, Vec.t alias — must
     fire, and none of them double-report under float-eq. *)
  check_flagged ~file:"lib/worker/bad_float_array_eq.ml" ~rule:"poly-compare"
    ~at_least:4;
  Alcotest.(check int)
    "no float-eq findings on array operands" 0
    (List.length (findings_in "lib/worker/bad_float_array_eq.ml" "float-eq"))

let test_domain_unsafe_global () =
  (* Two toplevel bindings plus the mutable type declaration. *)
  check_flagged ~file:"lib/worker/bad_global.ml" ~rule:"domain-unsafe-global"
    ~at_least:3

let test_unsafe_array () =
  check_flagged ~file:"lib/worker/bad_unsafe.ml" ~rule:"unsafe-array"
    ~at_least:2

let test_catch_all () =
  check_flagged ~file:"lib/worker/bad_catch.ml" ~rule:"catch-all-exn"
    ~at_least:2

let test_printf_in_lib () =
  check_flagged ~file:"lib/worker/bad_printf.ml" ~rule:"printf-in-lib"
    ~at_least:2

let test_good_twins_clean () =
  List.iter
    (fun (d : Diagnostic.t) ->
      if
        d.Diagnostic.file = "lib/solo/good.ml"
        || d.Diagnostic.file = "bin/main.ml"
      then
        Alcotest.failf "good twin flagged: %s" (Diagnostic.to_string d))
    ((Lazy.force result).Driver.findings
    @ (Lazy.force result).Driver.suppressed)

let test_every_rule_has_bad_and_good () =
  (* The acceptance bar: each registered rule fires somewhere in the
     fixture tree and never on the good twins (checked above). *)
  let flagged_rules =
    List.sort_uniq String.compare
      (List.map
         (fun (d : Diagnostic.t) -> d.Diagnostic.rule)
         ((Lazy.force result).Driver.findings
         @ (Lazy.force result).Driver.suppressed))
  in
  List.iter
    (fun (r : Rules.rule) ->
      if not (List.mem r.Rules.id flagged_rules) then
        Alcotest.failf "rule %s never fired on the fixture tree" r.Rules.id)
    Rules.all

let test_suppression () =
  let r = Lazy.force result in
  let in_suppressed_file (d : Diagnostic.t) =
    d.Diagnostic.file = "lib/worker/suppressed.ml"
  in
  List.iter
    (fun d ->
      if in_suppressed_file d then
        Alcotest.failf "annotated finding not suppressed: %s"
          (Diagnostic.to_string d))
    r.Driver.findings;
  let audit = List.filter in_suppressed_file r.Driver.suppressed in
  let rules =
    List.sort_uniq String.compare
      (List.map (fun (d : Diagnostic.t) -> d.Diagnostic.rule) audit)
  in
  Alcotest.(check (list string))
    "suppressed audit trail keeps the diagnostics"
    [ "domain-unsafe-global"; "float-eq"; "poly-compare" ]
    rules

let test_exit_semantics () =
  let r = Lazy.force result in
  Util.check_true "fixture tree is not clean" (not (Driver.clean r));
  let clean =
    Driver.lint ~root:fixture_root ~paths:[ "lib/solo"; "bin" ] ()
  in
  Util.check_true "good-only subtree is clean" (Driver.clean clean)

let test_json_roundtrip () =
  let r = Lazy.force result in
  let j = Util.Json.parse (Driver.render_json r) in
  Alcotest.(check string)
    "tool" "charon-lint"
    Util.Json.(to_string (member "tool" j));
  Alcotest.(check int)
    "files" r.Driver.files_scanned
    Util.Json.(to_int (member "files" j));
  let findings = Util.Json.(to_list (member "findings" j)) in
  Alcotest.(check int)
    "findings count" (List.length r.Driver.findings)
    (List.length findings);
  List.iter2
    (fun (d : Diagnostic.t) jd ->
      Alcotest.(check string)
        "finding file" d.Diagnostic.file
        Util.Json.(to_string (member "file" jd));
      Alcotest.(check int)
        "finding line" d.Diagnostic.line
        Util.Json.(to_int (member "line" jd));
      Alcotest.(check string)
        "finding rule" d.Diagnostic.rule
        Util.Json.(to_string (member "rule" jd)))
    r.Driver.findings findings;
  Alcotest.(check int)
    "suppressed count" (List.length r.Driver.suppressed)
    (List.length Util.Json.(to_list (member "suppressed" j)))

let contains ~sub s =
  let n = String.length s and m = String.length sub in
  let rec go i = i + m <= n && (String.sub s i m = sub || go (i + 1)) in
  go 0

let test_render_text () =
  let r = Lazy.force result in
  let text = Driver.render_text ~show_suppressed:true r in
  Util.check_true "mentions a finding" (contains ~sub:"bad_poly.ml" text);
  Util.check_true "mentions the audit trail"
    (contains ~sub:"suppressed.ml" text)

let () =
  Alcotest.run "lint"
    [
      ( "driver",
        [
          Util.case "parses fixture tree" test_parses_fixture_tree;
          Util.case "exit semantics" test_exit_semantics;
          Util.case "render text" test_render_text;
        ] );
      ( "rules",
        [
          Util.case "poly-compare" test_poly_compare;
          Util.case "float-eq" test_float_eq;
          Util.case "float-array poly-compare" test_float_array_eq;
          Util.case "domain-unsafe-global" test_domain_unsafe_global;
          Util.case "unsafe-array" test_unsafe_array;
          Util.case "catch-all-exn" test_catch_all;
          Util.case "printf-in-lib" test_printf_in_lib;
          Util.case "good twins clean" test_good_twins_clean;
          Util.case "every rule fires" test_every_rule_has_bad_and_good;
        ] );
      ( "suppression",
        [ Util.case "allow attribute" test_suppression ] );
      ( "json", [ Util.case "roundtrip" test_json_roundtrip ] );
    ]
