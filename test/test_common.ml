open Linalg
open Domains

(* ------------------------------------------------------------------ *)
(* Budget *)

let test_budget_unlimited () =
  let b = Common.Budget.unlimited () in
  Common.Budget.spend b 1_000_000;
  Util.check_true "never exhausted" (not (Common.Budget.exhausted b))

let test_budget_steps () =
  let b = Common.Budget.of_steps 10 in
  Util.check_true "fresh" (not (Common.Budget.exhausted b));
  Common.Budget.spend b 9;
  Util.check_true "under" (not (Common.Budget.exhausted b));
  Common.Budget.spend b 1;
  Util.check_true "exact limit exhausts" (Common.Budget.exhausted b);
  Alcotest.(check int) "steps tracked" 10 (Common.Budget.steps_used b)

let test_budget_seconds () =
  let b = Common.Budget.of_seconds 0.05 in
  Util.check_true "fresh" (not (Common.Budget.exhausted b));
  Unix.sleepf 0.08;
  (* Wall-clock checks are strided (every [poll_stride]-th poll reads
     the clock), so expiry is guaranteed only within a full stride of
     polls, not on the very next one. *)
  let expired = ref false in
  for _ = 1 to 2 * Common.Budget.poll_stride do
    if Common.Budget.exhausted b then expired := true
  done;
  Util.check_true "expired within a stride" !expired;
  Util.check_true "sticky once seen" (Common.Budget.exhausted b);
  Util.check_true "elapsed measured" (Common.Budget.elapsed b >= 0.05)

let test_budget_combined () =
  let b = Common.Budget.create ~seconds:1000.0 ~steps:3 () in
  Common.Budget.spend b 3;
  Util.check_true "steps bind first" (Common.Budget.exhausted b)

(* ------------------------------------------------------------------ *)
(* Outcome *)

let test_outcome_labels () =
  Alcotest.(check string) "verified" "verified"
    (Common.Outcome.label Common.Outcome.Verified);
  Alcotest.(check string) "falsified" "falsified"
    (Common.Outcome.label (Common.Outcome.Refuted [| 0.0 |]));
  Alcotest.(check string) "timeout" "timeout"
    (Common.Outcome.label Common.Outcome.Timeout);
  Alcotest.(check string) "unknown" "unknown"
    (Common.Outcome.label Common.Outcome.Unknown)

let test_outcome_solved () =
  Util.check_true "verified solved" (Common.Outcome.is_solved Common.Outcome.Verified);
  Util.check_true "refuted solved"
    (Common.Outcome.is_solved (Common.Outcome.Refuted [| 1.0 |]));
  Util.check_true "timeout unsolved"
    (not (Common.Outcome.is_solved Common.Outcome.Timeout));
  Util.check_true "unknown unsolved"
    (not (Common.Outcome.is_solved Common.Outcome.Unknown))

let test_outcome_agreement () =
  let refuted = Common.Outcome.Refuted [| 0.0 |] in
  Util.check_true "verified vs refuted conflict"
    (not (Common.Outcome.agrees Common.Outcome.Verified refuted));
  Util.check_true "timeout agrees with anything"
    (Common.Outcome.agrees Common.Outcome.Timeout refuted
    && Common.Outcome.agrees Common.Outcome.Timeout Common.Outcome.Verified);
  Util.check_true "same verdicts agree"
    (Common.Outcome.agrees refuted refuted
    && Common.Outcome.agrees Common.Outcome.Verified Common.Outcome.Verified)

(* ------------------------------------------------------------------ *)
(* Property *)

let test_property_holds_at () =
  let net = Nn.Init.xor () in
  let region = Box.create ~lo:[| 0.0; 0.0 |] ~hi:[| 1.0; 1.0 |] in
  let p = Common.Property.create ~region ~target:1 () in
  Util.check_true "xor(0,1) = 1 satisfies" (Common.Property.holds_at net p [| 0.0; 1.0 |]);
  Util.check_true "xor(0,0) = 0 violates"
    (not (Common.Property.holds_at net p [| 0.0; 0.0 |]))

let test_property_ties_violate () =
  (* A constant network scores every class equally: no strict winner, so
     no class's robustness property can hold. *)
  let w = Mat.zeros 2 1 in
  let net = Nn.Network.create ~input_dim:1 [ Nn.Layer.affine w (Vec.zeros 2) ] in
  let p =
    Common.Property.create ~region:(Box.create ~lo:[| 0.0 |] ~hi:[| 1.0 |]) ~target:0 ()
  in
  Util.check_true "tie is a violation" (not (Common.Property.holds_at net p [| 0.5 |]))

let test_property_check_samples () =
  let net = Nn.Init.xor () in
  let region = Box.create ~lo:[| 0.3; 0.3 |] ~hi:[| 0.7; 0.7 |] in
  let good = Common.Property.create ~region ~target:1 () in
  Util.check_true "true property survives sampling"
    (Common.Property.check_samples (Rng.create 1) net good ~n:500 = None);
  let bad = Common.Property.create ~region ~target:0 () in
  match Common.Property.check_samples (Rng.create 1) net bad ~n:500 with
  | Some x -> Util.check_true "witness in region" (Box.contains region x)
  | None -> Alcotest.fail "false property should be caught by sampling"

let test_property_rejects_negative_class () =
  Alcotest.check_raises "negative class"
    (Invalid_argument "Property.create: negative target class") (fun () ->
      ignore
        (Common.Property.create
           ~region:(Box.create ~lo:[| 0.0 |] ~hi:[| 1.0 |])
           ~target:(-1) ()))

(* ------------------------------------------------------------------ *)
(* Regionspec *)

let test_regionspec_floats () =
  Util.check_vec "parses" [| 1.0; -2.5; 0.0 |]
    (Common.Regionspec.parse_floats "1, -2.5 ,0");
  Alcotest.check_raises "rejects junk"
    (Failure "Regionspec: not a number: \"x\"") (fun () ->
      ignore (Common.Regionspec.parse_floats "1,x"))

let test_regionspec_box () =
  let b = Common.Regionspec.parse_box "0:1, -1:2" in
  Util.check_vec "lo" [| 0.0; -1.0 |] b.Box.lo;
  Util.check_vec "hi" [| 1.0; 2.0 |] b.Box.hi;
  Alcotest.check_raises "rejects inverted"
    (Failure "Regionspec: Box.create: lo.(0) = 2 > hi.(0) = 1") (fun () ->
      ignore (Common.Regionspec.parse_box "2:1"))

let test_regionspec_options () =
  let b =
    Common.Regionspec.of_options ~center:(Some "0.5,0.5") ~radius:0.1 ~box:None
  in
  Util.check_vec "center form" [| 0.4; 0.4 |] b.Box.lo;
  let b2 =
    Common.Regionspec.of_options ~center:None ~radius:0.0 ~box:(Some "0:1")
  in
  Util.check_vec "box form" [| 0.0 |] b2.Box.lo;
  Alcotest.check_raises "both given"
    (Failure "Regionspec: give either a center/radius or a box, not both")
    (fun () ->
      ignore
        (Common.Regionspec.of_options ~center:(Some "0") ~radius:0.1
           ~box:(Some "0:1")));
  Alcotest.check_raises "neither given"
    (Failure "Regionspec: a region is required") (fun () ->
      ignore (Common.Regionspec.of_options ~center:None ~radius:0.1 ~box:None))

let test_regionspec_roundtrip () =
  Util.repeat ~seed:200 (fun rng _ ->
      let b = Util.small_box rng 3 in
      let b' = Common.Regionspec.parse_box (Common.Regionspec.to_box_string b) in
      Util.check_true "roundtrip" (Box.equal b b'))

(* ------------------------------------------------------------------ *)
(* Pqueue *)

let test_pqueue_orders () =
  let q = Common.Pqueue.create () in
  List.iter
    (fun (p, v) -> Common.Pqueue.push q ~priority:p v)
    [ (3.0, "c"); (1.0, "a"); (2.0, "b"); (0.5, "z") ];
  Alcotest.(check int) "size" 4 (Common.Pqueue.size q);
  let order = ref [] in
  let rec drain () =
    match Common.Pqueue.pop q with
    | Some (_, v) ->
        order := v :: !order;
        drain ()
    | None -> ()
  in
  drain ();
  Alcotest.(check (list string)) "min-first" [ "z"; "a"; "b"; "c" ]
    (List.rev !order);
  Util.check_true "empty after drain" (Common.Pqueue.is_empty q)

let test_pqueue_random_is_sorted () =
  Util.repeat ~seed:201 (fun rng _ ->
      let q = Common.Pqueue.create () in
      let n = 1 + Rng.int rng 50 in
      for i = 1 to n do
        Common.Pqueue.push q ~priority:(Rng.gaussian rng) i
      done;
      let prev = ref neg_infinity in
      let rec drain () =
        match Common.Pqueue.pop q with
        | Some (p, _) ->
            Util.check_true "non-decreasing priorities" (p >= !prev);
            prev := p;
            drain ()
        | None -> ()
      in
      drain ())

let test_pqueue_peek () =
  let q = Common.Pqueue.create () in
  Util.check_true "empty peek" (Common.Pqueue.peek q = None);
  Common.Pqueue.push q ~priority:5.0 "x";
  Common.Pqueue.push q ~priority:1.0 "y";
  (match Common.Pqueue.peek q with
  | Some (p, v) ->
      Util.check_close ~eps:0.0 "min priority" 1.0 p;
      Alcotest.(check string) "min value" "y" v
  | None -> Alcotest.fail "expected element");
  Alcotest.(check int) "peek does not remove" 2 (Common.Pqueue.size q)

(* ------------------------------------------------------------------ *)
(* Propfile *)

let sample_propfile =
  {|# a comment
property p1
network net.txt
target 3
box 0:1,0.25:0.75
end

property p2
target 0
center 0.5,0.5
radius 0.1
end
|}

let test_propfile_parse () =
  match Common.Propfile.parse sample_propfile with
  | [ a; b ] ->
      Alcotest.(check string) "name" "p1"
        a.Common.Propfile.property.Common.Property.name;
      Alcotest.(check (option string)) "network" (Some "net.txt")
        a.Common.Propfile.network;
      Alcotest.(check int) "target" 3
        a.Common.Propfile.property.Common.Property.target;
      Util.check_vec "box hi" [| 1.0; 0.75 |]
        a.Common.Propfile.property.Common.Property.region.Box.hi;
      Util.check_vec "center/radius lo" [| 0.4; 0.4 |]
        b.Common.Propfile.property.Common.Property.region.Box.lo;
      Alcotest.(check (option string)) "no network" None
        b.Common.Propfile.network
  | other ->
      Alcotest.failf "expected two entries, got %d" (List.length other)

let test_propfile_roundtrip () =
  let entries = Common.Propfile.parse sample_propfile in
  let entries' = Common.Propfile.parse (Common.Propfile.print entries) in
  List.iter2
    (fun (a : Common.Propfile.entry) (b : Common.Propfile.entry) ->
      Alcotest.(check string) "name" a.Common.Propfile.property.Common.Property.name
        b.Common.Propfile.property.Common.Property.name;
      Util.check_true "same region"
        (Box.equal a.Common.Propfile.property.Common.Property.region
           b.Common.Propfile.property.Common.Property.region))
    entries entries'

let test_propfile_errors () =
  let check_fails msg text =
    match Common.Propfile.parse text with
    | _ -> Alcotest.failf "%s: expected failure" msg
    | exception Failure _ -> ()
  in
  check_fails "missing end" "property p
target 1
box 0:1
";
  check_fails "missing target" "property p
box 0:1
end
";
  check_fails "missing region" "property p
target 0
end
";
  check_fails "both region forms"
    "property p
target 0
box 0:1
center 0.5
radius 0.1
end
";
  check_fails "unknown keyword" "property p
foo bar
end
";
  check_fails "stray end" "end
"

let () =
  Alcotest.run "common"
    [
      ( "budget",
        [
          Util.case "unlimited" test_budget_unlimited;
          Util.case "step budget" test_budget_steps;
          Util.case "wall-clock budget" test_budget_seconds;
          Util.case "combined budget" test_budget_combined;
        ] );
      ( "outcome",
        [
          Util.case "labels" test_outcome_labels;
          Util.case "solved classification" test_outcome_solved;
          Util.case "agreement" test_outcome_agreement;
        ] );
      ( "property",
        [
          Util.case "holds_at" test_property_holds_at;
          Util.case "ties violate" test_property_ties_violate;
          Util.case "check_samples" test_property_check_samples;
          Util.case "rejects negative class" test_property_rejects_negative_class;
        ] );
      ( "regionspec",
        [
          Util.case "float lists" test_regionspec_floats;
          Util.case "box parsing" test_regionspec_box;
          Util.case "option resolution" test_regionspec_options;
          Util.case "roundtrip" test_regionspec_roundtrip;
        ] );
      ( "propfile",
        [
          Util.case "parse" test_propfile_parse;
          Util.case "roundtrip" test_propfile_roundtrip;
          Util.case "errors" test_propfile_errors;
        ] );
      ( "pqueue",
        [
          Util.case "orders elements" test_pqueue_orders;
          Util.case "random priorities sorted" test_pqueue_random_is_sorted;
          Util.case "peek" test_pqueue_peek;
        ] );
    ]
