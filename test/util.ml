(* Shared helpers for the test suites: random structure generators and
   common checks.  Linked into every test executable in this directory. *)

open Linalg

let check_float = Alcotest.(check (float 1e-9))

let check_close ?(eps = 1e-6) msg expected actual =
  Alcotest.(check (float eps)) msg expected actual

let check_vec ?(eps = 1e-9) msg expected actual =
  if not (Vec.approx_equal ~eps expected actual) then
    Alcotest.failf "%s: expected %s, got %s" msg
      (Format.asprintf "%a" Vec.pp expected)
      (Format.asprintf "%a" Vec.pp actual)

let check_true msg b = Alcotest.(check bool) msg true b

(* A random dense ReLU network with the given layer sizes. *)
let random_dense rng sizes = Nn.Init.dense rng ~layer_sizes:sizes

(* A random small network: 2-4 inputs, one or two hidden layers, 2-3
   classes.  Small enough for exhaustive-ish sampling checks. *)
let small_net rng =
  let inputs = 2 + Rng.int rng 3 in
  let classes = 2 + Rng.int rng 2 in
  let hidden = 3 + Rng.int rng 5 in
  let sizes =
    if Rng.bool rng then [ inputs; hidden; classes ]
    else [ inputs; hidden; hidden; classes ]
  in
  random_dense rng sizes

(* A random box around the origin with sides in (0, 1]. *)
let small_box rng dim =
  let center = Vec.init dim (fun _ -> Rng.uniform rng ~lo:(-1.0) ~hi:1.0) in
  let lo = Vec.init dim (fun i -> center.(i) -. Rng.float rng 0.5) in
  let hi = Vec.init dim (fun i -> center.(i) +. (0.01 +. Rng.float rng 0.5)) in
  Domains.Box.create ~lo ~hi

(* Deterministic, reproducible randomness for every test suite
   (docs/testing.md).  Each call site passes its own default seed, but
   CHARON_TEST_SEED overrides all of them at once — so a failure seen
   under some seed reproduces with

     CHARON_TEST_SEED=<seed> dune runtest

   and a soak can sweep seeds without editing tests.  Failures print
   the seed that produced them. *)
let env_seed =
  match Sys.getenv_opt "CHARON_TEST_SEED" with
  | None | Some "" -> None
  | Some s -> (
      match int_of_string_opt (String.trim s) with
      | Some n -> Some n
      | None ->
          Printf.eprintf "ignoring malformed CHARON_TEST_SEED=%S\n%!" s;
          None)

let effective_seed default = Option.value env_seed ~default

(* Property-based testing glue: run a seeded check [count] times. *)
let repeat ?(count = 50) ~seed f =
  let seed = effective_seed seed in
  let rng = Rng.create seed in
  for i = 1 to count do
    try f (Rng.split rng) i
    with e ->
      Printf.eprintf
        "\nfailing case %d/%d; reproduce with CHARON_TEST_SEED=%d\n%!" i count
        seed;
      raise e
  done

let qtest name ?(count = 100) gen prop =
  (* An explicit ~rand pins QCheck's stream to our seed convention;
     without it qcheck-alcotest self-initialises from the global
     Random state and failures are unreproducible. *)
  let seed = effective_seed 421 in
  QCheck_alcotest.to_alcotest
    ~rand:(Random.State.make [| seed |])
    (QCheck2.Test.make
       ~name:(Printf.sprintf "%s (CHARON_TEST_SEED=%d)" name seed)
       ~count gen prop)

let suite name cases = (name, cases)

let case name f = Alcotest.test_case name `Quick f

let slow_case name f = Alcotest.test_case name `Slow f

(* A small JSON reader, enough to round-trip machine-readable tool
   output (charon-lint --json) back into structured form in tests. *)
module Json = struct
  type t =
    | Null
    | Bool of bool
    | Int of int
    | Float of float
    | Str of string
    | Arr of t list
    | Obj of (string * t) list

  exception Error of string

  let fail fmt = Printf.ksprintf (fun m -> raise (Error m)) fmt

  let parse s =
    let n = String.length s in
    let pos = ref 0 in
    let peek () = if !pos < n then Some s.[!pos] else None in
    let next () =
      if !pos >= n then fail "unexpected end of input";
      let c = s.[!pos] in
      incr pos;
      c
    in
    let skip_ws () =
      while
        !pos < n
        && (match s.[!pos] with ' ' | '\t' | '\n' | '\r' -> true | _ -> false)
      do
        incr pos
      done
    in
    let expect c =
      let got = next () in
      if got <> c then fail "expected %c, got %c at %d" c got (!pos - 1)
    in
    let literal word v =
      String.iter expect word;
      v
    in
    let parse_string () =
      expect '"';
      let buf = Buffer.create 16 in
      let rec go () =
        match next () with
        | '"' -> Buffer.contents buf
        | '\\' ->
            (match next () with
            | '"' -> Buffer.add_char buf '"'
            | '\\' -> Buffer.add_char buf '\\'
            | '/' -> Buffer.add_char buf '/'
            | 'b' -> Buffer.add_char buf '\b'
            | 'f' -> Buffer.add_char buf '\012'
            | 'n' -> Buffer.add_char buf '\n'
            | 'r' -> Buffer.add_char buf '\r'
            | 't' -> Buffer.add_char buf '\t'
            | 'u' ->
                let hex = String.init 4 (fun _ -> next ()) in
                let code = int_of_string ("0x" ^ hex) in
                if code < 0x80 then Buffer.add_char buf (Char.chr code)
                else
                  (* Tests only ever see ASCII; anything else keeps its
                     escaped spelling rather than growing a UTF-8 encoder. *)
                  Buffer.add_string buf (Printf.sprintf "\\u%s" hex)
            | c -> fail "bad escape \\%c" c);
            go ()
        | c ->
            Buffer.add_char buf c;
            go ()
      in
      go ()
    in
    let parse_number () =
      let start = !pos in
      let number_char c =
        match c with
        | '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true
        | _ -> false
      in
      while (match peek () with Some c -> number_char c | None -> false) do
        incr pos
      done;
      let tok = String.sub s start (!pos - start) in
      match int_of_string_opt tok with
      | Some i -> Int i
      | None -> (
          match float_of_string_opt tok with
          | Some f -> Float f
          | None -> fail "bad number %S" tok)
    in
    let rec parse_value () =
      skip_ws ();
      match peek () with
      | None -> fail "unexpected end of input"
      | Some '"' -> Str (parse_string ())
      | Some '{' ->
          expect '{';
          skip_ws ();
          if peek () = Some '}' then (expect '}'; Obj [])
          else Obj (parse_members [])
      | Some '[' ->
          expect '[';
          skip_ws ();
          if peek () = Some ']' then (expect ']'; Arr [])
          else Arr (parse_items [])
      | Some 't' -> literal "true" (Bool true)
      | Some 'f' -> literal "false" (Bool false)
      | Some 'n' -> literal "null" Null
      | Some _ -> parse_number ()
    and parse_members acc =
      skip_ws ();
      let key = parse_string () in
      skip_ws ();
      expect ':';
      let v = parse_value () in
      skip_ws ();
      match next () with
      | ',' -> parse_members ((key, v) :: acc)
      | '}' -> List.rev ((key, v) :: acc)
      | c -> fail "expected , or } in object, got %c" c
    and parse_items acc =
      let v = parse_value () in
      skip_ws ();
      match next () with
      | ',' -> parse_items (v :: acc)
      | ']' -> List.rev (v :: acc)
      | c -> fail "expected , or ] in array, got %c" c
    in
    let v = parse_value () in
    skip_ws ();
    if !pos <> n then fail "trailing input at %d" !pos;
    v

  let member key = function
    | Obj kvs -> (
        match List.assoc_opt key kvs with
        | Some v -> v
        | None -> fail "no member %S" key)
    | _ -> fail "member %S of non-object" key

  let to_string = function Str s -> s | _ -> fail "expected string"

  let to_int = function Int i -> i | _ -> fail "expected int"

  let to_list = function Arr l -> l | _ -> fail "expected array"
end
