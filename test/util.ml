(* Shared helpers for the test suites: random structure generators and
   common checks.  Linked into every test executable in this directory. *)

open Linalg

let check_float = Alcotest.(check (float 1e-9))

let check_close ?(eps = 1e-6) msg expected actual =
  Alcotest.(check (float eps)) msg expected actual

let check_vec ?(eps = 1e-9) msg expected actual =
  if not (Vec.approx_equal ~eps expected actual) then
    Alcotest.failf "%s: expected %s, got %s" msg
      (Format.asprintf "%a" Vec.pp expected)
      (Format.asprintf "%a" Vec.pp actual)

let check_true msg b = Alcotest.(check bool) msg true b

(* A random dense ReLU network with the given layer sizes. *)
let random_dense rng sizes = Nn.Init.dense rng ~layer_sizes:sizes

(* A random small network: 2-4 inputs, one or two hidden layers, 2-3
   classes.  Small enough for exhaustive-ish sampling checks. *)
let small_net rng =
  let inputs = 2 + Rng.int rng 3 in
  let classes = 2 + Rng.int rng 2 in
  let hidden = 3 + Rng.int rng 5 in
  let sizes =
    if Rng.bool rng then [ inputs; hidden; classes ]
    else [ inputs; hidden; hidden; classes ]
  in
  random_dense rng sizes

(* A random box around the origin with sides in (0, 1]. *)
let small_box rng dim =
  let center = Vec.init dim (fun _ -> Rng.uniform rng ~lo:(-1.0) ~hi:1.0) in
  let lo = Vec.init dim (fun i -> center.(i) -. Rng.float rng 0.5) in
  let hi = Vec.init dim (fun i -> center.(i) +. (0.01 +. Rng.float rng 0.5)) in
  Domains.Box.create ~lo ~hi

(* Property-based testing glue: run a seeded check [count] times. *)
let repeat ?(count = 50) ~seed f =
  let rng = Rng.create seed in
  for i = 1 to count do
    f (Rng.split rng) i
  done

let qtest name ?(count = 100) gen prop =
  QCheck_alcotest.to_alcotest
    (QCheck2.Test.make ~name ~count gen prop)

let suite name cases = (name, cases)

let case name f = Alcotest.test_case name `Quick f

let slow_case name f = Alcotest.test_case name `Slow f
