(* Protocol fuzz for the charon-serve wire layer (docs/serving.md).

   A real daemon — both transports, tenants configured, a small line
   bound — is attacked with malformed frames: truncated JSON, oversized
   lines, wrong-version hellos, raw binary garbage, torn writes, and
   well-formed JSON that is semantically nonsense.  The contract under
   fuzz is the accept loop's liveness and its error discipline: every
   frame gets either a structured reject ({"ok":false,"code":...}) or a
   clean close — never a hang, never an unhandled exception, and the
   daemon still answers real work afterwards.

   Case count: CHARON_FUZZ_CASES (default is a quick smoke run under
   `dune runtest`; `dune build @fuzz` reruns at full depth, see
   test/dune).  Generation is seeded QCheck through Util.qtest, so
   failures reproduce from the printed CHARON_TEST_SEED. *)

module J = Telemetry.Jsonw

let cases =
  match Sys.getenv_opt "CHARON_FUZZ_CASES" with
  | None -> 40
  | Some s -> (
      match int_of_string_opt (String.trim s) with
      | Some n when n > 0 -> n
      | _ -> 40)

(* Small enough that the oversized-line defence triggers on a few KiB
   of garbage instead of the 8 MiB production default. *)
let max_line = 4096

let socket =
  Filename.concat
    (Filename.get_temp_dir_name ())
    (Printf.sprintf "charon-fuzz-%d.sock" (Unix.getpid ()))

let tenants =
  Server.Tenant.of_json
    (J.parse {|{"tenants":[{"name":"fuzzer","key":"fuzz-key"}]}|})

(* One daemon for the whole executable; the last test stops it and
   asserts the shutdown is clean. *)
let handle =
  (* A fuzz frame cut mid-write makes the daemon's reply hit a closed
     peer; without this the resulting SIGPIPE would kill *this*
     process, not the daemon. *)
  (try Sys.set_signal Sys.sigpipe Sys.Signal_ignore
   with Invalid_argument _ -> ());
  Server.Daemon.start ~socket ~tcp:("127.0.0.1", 0) ~workers:2 ~max_line
    ~tenants ()

let port =
  match Server.Daemon.tcp_port handle with
  | Some p -> p
  | None -> Alcotest.fail "fuzz daemon bound no TCP port"

(* A realistic well-formed submit request, raw material for the
   truncation fuzz. *)
let valid_submit_line =
  let spec =
    {
      Server.Protocol.name = "fuzz-donor";
      network = Nn.Serial.to_string (Nn.Init.xor ());
      box = Domains.Box.create ~lo:[| 0.3; 0.3 |] ~hi:[| 0.7; 0.7 |];
      target = 1;
      delta = 1e-4;
      timeout = None;
      max_steps = None;
      seed = 7;
    }
  in
  J.to_string (Server.Protocol.to_json (Server.Protocol.Submit spec))

(* ------------------------------------------------------------------ *)
(* Raw-socket plumbing *)

let connect use_tcp =
  let fd =
    if use_tcp then begin
      let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
      Unix.connect fd
        (Unix.ADDR_INET (Unix.inet_addr_of_string "127.0.0.1", port));
      fd
    end
    else begin
      let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
      Unix.connect fd (Unix.ADDR_UNIX socket);
      fd
    end
  in
  (* The client-side hang detector: if the daemon neither answers nor
     closes within 5s, reads below raise and the case fails.  (The
     daemon's own peer timeout is 10s, so a hang is ours to detect,
     not its.) *)
  (try
     Unix.setsockopt_float fd Unix.SO_RCVTIMEO 5.0;
     Unix.setsockopt_float fd Unix.SO_SNDTIMEO 5.0
   with Unix.Unix_error _ -> ());
  fd

(* The daemon may reject and close while we are still writing (the
   oversized defence does exactly that); the resulting EPIPE/reset is
   the clean close we are testing for, not a failure. *)
let send_all fd s =
  let n = String.length s in
  let rec go off =
    if off < n then
      match Unix.write_substring fd s off (n - off) with
      | written -> go (off + written)
      | exception
          Unix.Unix_error ((Unix.EPIPE | Unix.ECONNRESET | Unix.EPROTOTYPE), _, _)
        -> ()
  in
  go 0

(* One response line, or None on a clean close.  A receive timeout
   means the daemon hung — the one unforgivable outcome. *)
let read_response fd =
  let buf = Buffer.create 256 in
  let chunk = Bytes.create 1024 in
  let rec go () =
    match Unix.read fd chunk 0 (Bytes.length chunk) with
    | 0 -> if Buffer.length buf = 0 then None else Some (Buffer.contents buf)
    | n -> (
        Buffer.add_subbytes buf chunk 0 n;
        match String.index_opt (Buffer.contents buf) '\n' with
        | Some i -> Some (String.sub (Buffer.contents buf) 0 i)
        | None -> go ())
    | exception Unix.Unix_error (Unix.ECONNRESET, _, _) -> None
    | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK), _, _) ->
        Alcotest.fail "daemon hung: no response and no close within 5s"
  in
  go ()

(* Every surviving response must be a structured reject: parseable,
   ok=false, machine-readable code.  [expect] pins the code when the
   frame determines it. *)
let check_reject ?expect frame_desc = function
  | None -> ()  (* clean close: acceptable for every malformed frame *)
  | Some line -> (
      match J.parse line with
      | exception J.Parse_error msg ->
          Alcotest.failf "%s: daemon answered unparseable %S (%s)" frame_desc
            line msg
      | json -> (
          (match J.member "ok" json with
          | Some (J.Bool false) -> ()
          | _ ->
              Alcotest.failf "%s: malformed frame got a non-error answer %s"
                frame_desc line);
          match (Server.Protocol.reject_code json, expect) with
          | None, _ ->
              Alcotest.failf "%s: reject carries no code: %s" frame_desc line
          | Some got, Some want when got <> want ->
              Alcotest.failf "%s: expected code %S, got %S" frame_desc want got
          | Some _, _ -> ()))

(* ------------------------------------------------------------------ *)
(* Frame generation *)

type frame =
  | Truncated of int  (* valid submit cut to this many bytes *)
  | Oversized of int  (* newline-terminated line this far past max_line *)
  | Wrong_version of int
  | Garbage of string
  | Torn_write of int  (* valid prefix, no newline, half-close *)
  | Bad_semantics of string  (* parses fine, means nothing *)
  | Empty_line
  | Connect_only

let frame_desc = function
  | Truncated n -> Printf.sprintf "truncated(%d)" n
  | Oversized n -> Printf.sprintf "oversized(+%d)" n
  | Wrong_version v -> Printf.sprintf "wrong_version(%d)" v
  | Garbage s -> Printf.sprintf "garbage(%d bytes)" (String.length s)
  | Torn_write n -> Printf.sprintf "torn_write(%d)" n
  | Bad_semantics s -> Printf.sprintf "bad_semantics(%s)" s
  | Empty_line -> "empty_line"
  | Connect_only -> "connect_only"

let gen_frame =
  let open QCheck2.Gen in
  let truncated =
    (* 1 .. len-1: always strictly shorter than the valid line. *)
    map
      (fun n -> Truncated (1 + (n mod (String.length valid_submit_line - 1))))
      nat
  in
  let oversized = map (fun n -> Oversized (1 + (n mod 4096))) nat in
  let wrong_version =
    map
      (fun v ->
        let v = v mod 1000 in
        Wrong_version (if v = Server.Protocol.Serve.version then v + 1 else v))
      nat
  in
  let garbage =
    map
      (fun bytes ->
        Garbage (String.init (1 + List.length bytes) (fun i ->
             match List.nth_opt bytes i with
             | Some b -> Char.chr (b mod 256)
             | None -> '\xff')))
      (list_size (int_bound 64) nat)
  in
  let torn =
    map
      (fun n -> Torn_write (1 + (n mod String.length valid_submit_line)))
      nat
  in
  let bad_semantics =
    oneofl
      [
        Bad_semantics {|[1,2,3]|};
        Bad_semantics {|"just a string"|};
        Bad_semantics {|{"op":"frobnicate"}|};
        Bad_semantics {|{"op":"submit","network":5}|};
        Bad_semantics {|{"op":"status","id":"not-an-int"}|};
        Bad_semantics {|{"op":"cancel"}|};
        Bad_semantics {|{"op":"hello","version":"one"}|};
        Bad_semantics {|{"op":"hello","version":1,"api_key":42}|};
        Bad_semantics {|{"op":null}|};
        Bad_semantics {|123|};
      ]
  in
  oneof
    [
      truncated;
      oversized;
      wrong_version;
      garbage;
      torn;
      bad_semantics;
      return Empty_line;
      return Connect_only;
    ]

let gen_case = QCheck2.Gen.pair QCheck2.Gen.bool gen_frame

(* ------------------------------------------------------------------ *)
(* One fuzz exchange *)

let run_frame (use_tcp, frame) =
  let fd = connect use_tcp in
  Fun.protect
    ~finally:(fun () -> try Unix.close fd with Unix.Unix_error _ -> ())
    (fun () ->
      let desc =
        Printf.sprintf "%s over %s" (frame_desc frame)
          (if use_tcp then "tcp" else "unix")
      in
      match frame with
      | Truncated n ->
          (* Cut mid-JSON but still newline-framed: the daemon must
             diagnose a parse error, not wedge. *)
          send_all fd (String.sub valid_submit_line 0 n ^ "\n");
          check_reject desc (read_response fd)
      | Oversized over ->
          send_all fd (String.make (max_line + over) 'a' ^ "\n");
          check_reject ~expect:"oversized" desc (read_response fd)
      | Wrong_version v ->
          send_all fd
            (J.to_string
               (J.Obj [ ("op", J.Str "hello"); ("version", J.Int v) ])
            ^ "\n");
          check_reject ~expect:"version" desc (read_response fd)
      | Garbage s ->
          send_all fd (s ^ "\n");
          check_reject desc (read_response fd)
      | Torn_write n ->
          (* A client dying mid-write: bytes but no newline, then a
             half-close.  Nobody is left to answer; the daemon must
             just drop the connection. *)
          send_all fd (String.sub valid_submit_line 0 n);
          (try Unix.shutdown fd Unix.SHUTDOWN_SEND
           with Unix.Unix_error _ -> ());
          check_reject desc (read_response fd)
      | Bad_semantics s ->
          send_all fd (s ^ "\n");
          check_reject desc (read_response fd)
      | Empty_line ->
          send_all fd "\n";
          check_reject desc (read_response fd)
      | Connect_only ->
          (* Connect and leave without a word. *)
          (try Unix.shutdown fd Unix.SHUTDOWN_SEND
           with Unix.Unix_error _ -> ()));
  true

(* ------------------------------------------------------------------ *)
(* Liveness after the storm, and a clean stop *)

let test_daemon_survives_and_stops () =
  let addr = Server.Client.Unix_socket socket in
  let ok = Server.Client.ping ~addr () in
  (match J.member "ok" ok with
  | Some (J.Bool true) -> ()
  | _ -> Alcotest.fail "daemon no longer answers after the fuzz");
  (* Real work still flows end to end: the XOR example verifies. *)
  let spec =
    {
      Server.Protocol.name = "post-fuzz";
      network = Nn.Serial.to_string (Nn.Init.xor ());
      box = Domains.Box.create ~lo:[| 0.3; 0.3 |] ~hi:[| 0.7; 0.7 |];
      target = 1;
      delta = 1e-4;
      timeout = None;
      max_steps = None;
      seed = 7;
    }
  in
  let id, _ = Server.Client.submit ~addr spec in
  let final = Server.Client.wait ~addr ~deadline:60.0 id in
  (match
     Option.bind (J.member "verdict" final) (fun v ->
         Option.bind (J.member "verdict" v) J.to_string_opt)
   with
  | Some "verified" -> ()
  | other ->
      Alcotest.failf "post-fuzz job did not verify (got %s)"
        (Option.value ~default:"nothing" other));
  (* And the fuzz never escaped an exception into the accept loop: the
     daemon still shuts down cleanly, removing its socket. *)
  Server.Daemon.stop handle;
  Alcotest.(check bool) "socket removed" false (Sys.file_exists socket)

let () =
  Alcotest.run "protocol-fuzz"
    [
      ( "malformed frames",
        [
          Util.qtest "structured reject or clean close, never a hang"
            ~count:cases gen_case run_frame;
          Util.case "daemon survives the storm and stops cleanly"
            test_daemon_survives_and_stops;
        ] );
    ]
