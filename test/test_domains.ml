open Linalg
open Domains

(* ------------------------------------------------------------------ *)
(* Box *)

let unit_box dim =
  Box.create ~lo:(Vec.zeros dim) ~hi:(Vec.create dim 1.0)

let test_box_basics () =
  let b = Box.create ~lo:[| 0.0; -1.0 |] ~hi:[| 2.0; 1.0 |] in
  Util.check_vec "center" [| 1.0; 0.0 |] (Box.center b);
  Util.check_vec "widths" [| 2.0; 2.0 |] (Box.widths b);
  Util.check_close "diameter" (sqrt 8.0) (Box.diameter b);
  Alcotest.(check int) "longest" 0 (Box.longest_dim b);
  Util.check_true "contains center" (Box.contains b (Box.center b));
  Util.check_true "excludes outside" (not (Box.contains b [| 3.0; 0.0 |]))

let test_box_rejects_inverted () =
  Alcotest.check_raises "lo > hi"
    (Invalid_argument "Box.create: lo.(0) = 1 > hi.(0) = 0") (fun () ->
      ignore (Box.create ~lo:[| 1.0 |] ~hi:[| 0.0 |]))

let test_box_rejects_non_finite () =
  Alcotest.check_raises "nan bound"
    (Invalid_argument "Box.create: non-finite bound at 0") (fun () ->
      ignore (Box.create ~lo:[| Float.nan |] ~hi:[| 1.0 |]));
  Alcotest.check_raises "infinite bound"
    (Invalid_argument "Box.create: non-finite bound at 1") (fun () ->
      ignore (Box.create ~lo:[| 0.0; 0.0 |] ~hi:[| 1.0; Float.infinity |]))

let test_box_split_covers () =
  Util.repeat ~seed:50 (fun rng _ ->
      let b = Util.small_box rng 3 in
      let d = Rng.int rng 3 in
      let at = Rng.uniform rng ~lo:b.Box.lo.(d) ~hi:b.Box.hi.(d) in
      let l, r = Box.split b ~dim:d ~at in
      for _ = 1 to 50 do
        let x = Box.sample rng b in
        Util.check_true "covered" (Box.contains l x || Box.contains r x)
      done)

let test_box_split_shrinks_diameter () =
  (* Assumption 1 of the paper: both halves strictly smaller, even when
     the requested cut sits on a face. *)
  Util.repeat ~seed:51 (fun rng _ ->
      let b = Util.small_box rng 2 in
      let d = Rng.int rng 2 in
      let at = b.Box.lo.(d) (* degenerate request *) in
      let l, r = Box.split b ~dim:d ~at in
      Util.check_true "left shrinks" (Box.diameter l < Box.diameter b);
      Util.check_true "right shrinks" (Box.diameter r < Box.diameter b))

let test_box_clamp_projects () =
  let b = unit_box 2 in
  Util.check_vec "clamped" [| 0.0; 1.0 |] (Box.clamp b [| -5.0; 7.0 |]);
  Util.check_vec "interior unchanged" [| 0.5; 0.5 |] (Box.clamp b [| 0.5; 0.5 |])

let test_box_sample_inside () =
  Util.repeat ~seed:52 (fun rng _ ->
      let b = Util.small_box rng 4 in
      Util.check_true "sample inside" (Box.contains b (Box.sample rng b)))

let test_box_hull () =
  let a = Box.create ~lo:[| 0.0 |] ~hi:[| 1.0 |] in
  let b = Box.create ~lo:[| 2.0 |] ~hi:[| 3.0 |] in
  let h = Box.hull a b in
  Util.check_vec "hull lo" [| 0.0 |] h.Box.lo;
  Util.check_vec "hull hi" [| 3.0 |] h.Box.hi

let test_box_corner () =
  let b = Box.create ~lo:[| 0.0; 10.0 |] ~hi:[| 1.0; 20.0 |] in
  Util.check_vec "corner 0" [| 0.0; 10.0 |] (Box.corner b 0);
  Util.check_vec "corner 3" [| 1.0; 20.0 |] (Box.corner b 3)

let test_box_equal_is_bitwise () =
  (* Regression: [equal] used polymorphic [=] on the bound arrays,
     which conflates 0.0 with -0.0 — a real difference to the proof
     cache, whose keys are the IEEE bits of the bounds.  Per-element
     [Float.equal] keeps [equal] aligned with the key scheme. *)
  let plain = Box.create ~lo:[| 0.0; -1.0 |] ~hi:[| 1.0; 1.0 |] in
  let signed = Box.create ~lo:[| -0.0; -1.0 |] ~hi:[| 1.0; 1.0 |] in
  Util.check_true "equal to itself" (Box.equal plain plain);
  Util.check_true "equal to a bitwise copy"
    (Box.equal plain (Box.create ~lo:[| 0.0; -1.0 |] ~hi:[| 1.0; 1.0 |]));
  Util.check_true "-0.0 bound differs" (not (Box.equal plain signed));
  Util.check_true "dimension mismatch differs"
    (not (Box.equal plain (Box.create ~lo:[| 0.0 |] ~hi:[| 1.0 |])))

(* ------------------------------------------------------------------ *)
(* Generic soundness of a domain on random networks: for any point in
   the input box, the network output must lie inside the abstract
   output's component bounds, and every linear functional must respect
   linear_lower. *)

let soundness_check (type a) (module D : Domain_sig.S with type t = a) ~seed
    ~count () =
  Util.repeat ~seed ~count (fun rng _ ->
      let net = Util.small_net rng in
      let box = Util.small_box rng net.Nn.Network.input_dim in
      let out = Absint.Analyzer.propagate (module D) net (D.of_box box) in
      let m = net.Nn.Network.output_dim in
      let coeffs = Vec.init m (fun _ -> Rng.gaussian rng) in
      let lin_lo = D.linear_lower out ~coeffs in
      for _ = 1 to 30 do
        let x = Box.sample rng box in
        let y = Nn.Network.eval net x in
        for i = 0 to m - 1 do
          let lo, hi = D.bounds out i in
          Util.check_true
            (Printf.sprintf "output %d within [%g, %g] (got %g)" i lo hi y.(i))
            (y.(i) >= lo -. 1e-7 && y.(i) <= hi +. 1e-7)
        done;
        Util.check_true "linear_lower sound" (Vec.dot coeffs y >= lin_lo -. 1e-7)
      done)

let test_interval_soundness () =
  soundness_check (module Interval) ~seed:60 ~count:25 ()

let test_zonotope_soundness () =
  soundness_check (module Zonotope) ~seed:61 ~count:25 ()

let test_zonotope_join_soundness () =
  soundness_check (module Zonotope_join) ~seed:62 ~count:25 ()

let test_powerset_soundness () =
  let module P2 =
    Powerset.Over
      (Zonotope)
      (struct
        let max = 2
      end)
  in
  let module P4 =
    Powerset.Over
      (Interval)
      (struct
        let max = 4
      end)
  in
  soundness_check (module P2) ~seed:63 ~count:15 ();
  soundness_check (module P4) ~seed:64 ~count:15 ()

(* Soundness with max-pooling in the network. *)
let soundness_maxpool (type a) (module D : Domain_sig.S with type t = a) ~seed
    () =
  Util.repeat ~seed ~count:10 (fun rng _ ->
      let input = Nn.Shape.create ~channels:1 ~height:4 ~width:4 in
      let net = Nn.Init.lenet_like rng ~input ~classes:3 in
      let center = Vec.init 16 (fun _ -> Rng.float rng 1.0) in
      let box = Box.of_center_radius center 0.05 in
      let out = Absint.Analyzer.propagate (module D) net (D.of_box box) in
      for _ = 1 to 20 do
        let x = Box.sample rng box in
        let y = Nn.Network.eval net x in
        for i = 0 to 2 do
          let lo, hi = D.bounds out i in
          Util.check_true "maxpool sound" (y.(i) >= lo -. 1e-7 && y.(i) <= hi +. 1e-7)
        done
      done)

let test_interval_maxpool_soundness () =
  soundness_maxpool (module Interval) ~seed:65 ()

let test_zonotope_maxpool_soundness () =
  soundness_maxpool (module Zonotope) ~seed:66 ()

(* ------------------------------------------------------------------ *)
(* Interval specifics *)

let test_interval_affine_exact_on_point () =
  let m = Mat.of_rows [| [| 1.0; -2.0 |]; [| 0.5; 0.5 |] |] in
  let b = [| 1.0; 0.0 |] in
  let x = [| 3.0; 4.0 |] in
  let itv = Interval.of_box (Box.of_point x) in
  let out = Interval.affine m b itv in
  let expected = Vec.add (Mat.matvec m x) b in
  for i = 0 to 1 do
    let lo, hi = Interval.bounds out i in
    Util.check_close "point lo" expected.(i) lo;
    Util.check_close "point hi" expected.(i) hi
  done

let test_interval_relu_exact () =
  let itv = Interval.of_bounds ~lo:[| -2.0; 1.0; -3.0 |] ~hi:[| -1.0; 2.0; 4.0 |] in
  let out = Interval.relu itv in
  Alcotest.(check (pair (float 0.0) (float 0.0))) "negative" (0.0, 0.0)
    (Interval.bounds out 0);
  Alcotest.(check (pair (float 0.0) (float 0.0))) "positive" (1.0, 2.0)
    (Interval.bounds out 1);
  Alcotest.(check (pair (float 0.0) (float 0.0))) "crossing" (0.0, 4.0)
    (Interval.bounds out 2)

let test_interval_meets () =
  let itv = Interval.of_bounds ~lo:[| -1.0 |] ~hi:[| 2.0 |] in
  (match Interval.meet_ge0 itv 0 with
  | Some m ->
      Alcotest.(check (pair (float 0.0) (float 0.0))) "ge0" (0.0, 2.0)
        (Interval.bounds m 0)
  | None -> Alcotest.fail "expected non-empty meet");
  (match Interval.meet_le0 itv 0 with
  | Some m ->
      Alcotest.(check (pair (float 0.0) (float 0.0))) "le0" (-1.0, 0.0)
        (Interval.bounds m 0)
  | None -> Alcotest.fail "expected non-empty meet");
  let pos = Interval.of_bounds ~lo:[| 1.0 |] ~hi:[| 2.0 |] in
  Util.check_true "empty meet" (Interval.meet_le0 pos 0 = None)

(* ------------------------------------------------------------------ *)
(* Zonotope specifics *)

let test_zonotope_affine_exact () =
  (* Affine maps of zonotopes are exact: bounds after the map equal the
     true range of the affine image over the box corners. *)
  Util.repeat ~seed:67 (fun rng _ ->
      let box = Util.small_box rng 2 in
      let z = Zonotope.of_box box in
      let w = Mat.init 2 2 (fun _ _ -> Rng.gaussian rng) in
      let b = Vec.init 2 (fun _ -> Rng.gaussian rng) in
      let out = Zonotope.affine w b z in
      for i = 0 to 1 do
        let lo, hi = Zonotope.bounds out i in
        let best_lo = ref infinity and best_hi = ref neg_infinity in
        for mask = 0 to 3 do
          let y = Vec.add (Mat.matvec w (Box.corner box mask)) b in
          best_lo := Stdlib.min !best_lo y.(i);
          best_hi := Stdlib.max !best_hi y.(i)
        done;
        Util.check_close ~eps:1e-7 "exact lo" !best_lo lo;
        Util.check_close ~eps:1e-7 "exact hi" !best_hi hi
      done)

let test_zonotope_tracks_correlation () =
  (* y0 - y1 with y = [x; x] is exactly 0 for a zonotope but [-1, 1]
     for intervals on the unit box. *)
  let box = unit_box 1 in
  let w = Mat.of_rows [| [| 1.0 |]; [| 1.0 |] |] in
  let z = Zonotope.affine w (Vec.zeros 2) (Zonotope.of_box box) in
  let diff = Zonotope.linear_lower z ~coeffs:[| 1.0; -1.0 |] in
  Util.check_close "x - x = 0" 0.0 diff;
  let itv = Interval.affine w (Vec.zeros 2) (Interval.of_box box) in
  Util.check_close "interval loses it" (-1.0)
    (Interval.linear_lower itv ~coeffs:[| 1.0; -1.0 |])

let test_zonotope_relu_sound_per_dim () =
  Util.repeat ~seed:68 (fun rng _ ->
      let box = Util.small_box rng 3 in
      let z = Zonotope.of_box box in
      let w = Mat.init 3 3 (fun _ _ -> Rng.gaussian rng) in
      let pre = Zonotope.affine w (Vec.zeros 3) z in
      let post = Zonotope.relu pre in
      for _ = 1 to 40 do
        let p = Zonotope.sample rng pre in
        let q = Vec.relu p in
        for i = 0 to 2 do
          let lo, hi = Zonotope.bounds post i in
          Util.check_true "relu image covered"
            (q.(i) >= lo -. 1e-7 && q.(i) <= hi +. 1e-7)
        done
      done)

let test_zonotope_meet_ge0_sound () =
  Util.repeat ~seed:69 (fun rng _ ->
      let box = Util.small_box rng 2 in
      let w = Mat.init 2 2 (fun _ _ -> Rng.gaussian rng) in
      let z = Zonotope.affine w (Vec.zeros 2) (Zonotope.of_box box) in
      let lo, hi = Zonotope.bounds z 0 in
      if lo < 0.0 && hi > 0.0 then begin
        match Zonotope.meet_ge0 z 0 with
        | None -> Alcotest.fail "crossing meet should not be empty"
        | Some m ->
            let mb = Zonotope.to_box m in
            for _ = 1 to 60 do
              let p = Zonotope.sample rng z in
              if p.(0) >= 0.0 then
                Array.iteri
                  (fun i v ->
                    Util.check_true "meet keeps the half-space points"
                      (v >= mb.Box.lo.(i) -. 1e-7 && v <= mb.Box.hi.(i) +. 1e-7))
                  p
            done
      end)

let test_zonotope_meet_detects_empty () =
  let z = Zonotope.create ~center:[| -5.0 |] ~gens:[| [| 1.0 |] |] in
  Util.check_true "empty" (Zonotope.meet_ge0 z 0 = None);
  Util.check_true "non-empty other side" (Zonotope.meet_le0 z 0 <> None)

let test_zonotope_project_zero () =
  let z = Zonotope.create ~center:[| 1.0; 2.0 |] ~gens:[| [| 0.5; 0.5 |] |] in
  let p = Zonotope.project_zero z 0 in
  Alcotest.(check (pair (float 0.0) (float 0.0))) "dim 0 pinned" (0.0, 0.0)
    (Zonotope.bounds p 0);
  Alcotest.(check (pair (float 0.0) (float 0.0))) "dim 1 kept" (1.5, 2.5)
    (Zonotope.bounds p 1)

let test_zonotope_join_contains_both () =
  Util.repeat ~seed:70 (fun rng _ ->
      let mk () =
        let c = Vec.init 2 (fun _ -> Rng.gaussian rng) in
        let gens =
          Array.init (1 + Rng.int rng 3) (fun _ ->
              Vec.init 2 (fun _ -> 0.3 *. Rng.gaussian rng))
        in
        Zonotope.create ~center:c ~gens
      in
      let a = mk () and b = mk () in
      let j = Zonotope.join a b in
      let jb = Zonotope.to_box j in
      List.iter
        (fun z ->
          Array.iter
            (fun p ->
              Array.iteri
                (fun i v ->
                  Util.check_true "join covers members"
                    (v >= jb.Box.lo.(i) -. 1e-7 && v <= jb.Box.hi.(i) +. 1e-7))
                p)
            (Zonotope.contains_sample z))
        [ a; b ])

let test_zonotope_order_reduce_sound () =
  Util.repeat ~seed:71 (fun rng _ ->
      let gens =
        Array.init 20 (fun _ -> Vec.init 3 (fun _ -> 0.1 *. Rng.gaussian rng))
      in
      let z = Zonotope.create ~center:(Vec.zeros 3) ~gens in
      let r = Zonotope.order_reduce z ~max_gens:8 in
      Util.check_true "gen count reduced" (Zonotope.num_generators r <= 8 + 3);
      let rb = Zonotope.to_box r in
      for _ = 1 to 40 do
        let p = Zonotope.sample rng z in
        Array.iteri
          (fun i v ->
            Util.check_true "reduction over-approximates"
              (v >= rb.Box.lo.(i) -. 1e-7 && v <= rb.Box.hi.(i) +. 1e-7))
          p
      done)

(* ------------------------------------------------------------------ *)
(* Powerset specifics *)

module PZ2 =
  Powerset.Over
    (Zonotope)
    (struct
      let max = 2
    end)

let test_powerset_respects_budget () =
  Util.repeat ~seed:72 ~count:15 (fun rng _ ->
      let net = Util.small_net rng in
      let box = Util.small_box rng net.Nn.Network.input_dim in
      let out = Absint.Analyzer.propagate (module PZ2) net (PZ2.of_box box) in
      Util.check_true "at most 2 disjuncts" (PZ2.disjuncts out <= 2))

let test_powerset_separation_on_ex23 () =
  (* The paper's Example 2.3: ZJ1 fails, ZJ2 proves. *)
  let net = Nn.Init.example_2_3 () in
  let box = unit_box 2 in
  let zj1 = Absint.Analyzer.margin_lower net box ~k:1 Domain.zonotope_join in
  let zj2 =
    Absint.Analyzer.margin_lower net box ~k:1
      (Domain.powerset Domain.Zonotope_join_base 2)
  in
  Util.check_true "ZJ1 cannot prove" (zj1 <= 0.0);
  Util.check_true "ZJ2 proves" (zj2 > 0.0)

(* ------------------------------------------------------------------ *)
(* Symbolic-interval domain (the beyond-the-paper extension) *)

let test_symbolic_soundness () =
  soundness_check (module Symbolic) ~seed:73 ~count:25 ()

let test_symbolic_tracks_correlation () =
  let box = unit_box 1 in
  let w = Mat.of_rows [| [| 1.0 |]; [| 1.0 |] |] in
  let s = Symbolic.affine w (Vec.zeros 2) (Symbolic.of_box box) in
  Util.check_close "x - x = 0" 0.0 (Symbolic.linear_lower s ~coeffs:[| 1.0; -1.0 |])

let test_symbolic_proves_example_2_2 () =
  let net = Nn.Init.example_2_2 () in
  let box = Box.create ~lo:[| -1.0 |] ~hi:[| 1.0 |] in
  Util.check_true "symbolic proves Example 2.2"
    (Absint.Analyzer.margin_lower net box ~k:1 Domain.symbolic > 0.0)

let test_symbolic_maxpool_fallback_sound () =
  soundness_maxpool (module Symbolic) ~seed:74 ()

let test_symbolic_rejects_powerset () =
  Alcotest.check_raises "no powerset lift"
    (Invalid_argument
       "Domain.powerset: the symbolic-interval domain has no half-space meet \
        and cannot be lifted to a powerset") (fun () ->
      ignore (Domain.powerset Domain.Symbolic_base 2))

let test_symbolic_string_roundtrip () =
  match Domain.of_string (Domain.to_string Domain.symbolic) with
  | Some s -> Util.check_true "S1 roundtrip" (Domain.equal s Domain.symbolic)
  | None -> Alcotest.fail "S1 must parse"

(* ------------------------------------------------------------------ *)
(* Domain dispatch *)

let test_domain_string_roundtrip () =
  List.iter
    (fun spec ->
      match Domain.of_string (Domain.to_string spec) with
      | Some spec' -> Util.check_true "roundtrip" (Domain.equal spec spec')
      | None -> Alcotest.failf "failed to parse %s" (Domain.to_string spec))
    (Domain.all_cheap
    @ [ Domain.zonotope_join; Domain.powerset Domain.Zonotope_join_base 64 ])

let test_domain_of_string_rejects () =
  List.iter
    (fun s -> Util.check_true s (Domain.of_string s = None))
    [ ""; "X3"; "Z0"; "Z-1"; "ZJ"; "I"; "Zfoo" ]

let test_domain_get_names () =
  let (module D) = Domain.get Domain.interval in
  Alcotest.(check string) "interval" "interval" D.name;
  let (module D) = Domain.get (Domain.powerset Domain.Zonotope_base 4) in
  Alcotest.(check string) "powerset name" "zonotope-powerset-4" D.name

let () =
  Alcotest.run "domains"
    [
      ( "box",
        [
          Util.case "basics" test_box_basics;
          Util.case "rejects inverted bounds" test_box_rejects_inverted;
          Util.case "rejects non-finite bounds" test_box_rejects_non_finite;
          Util.case "split covers parent" test_box_split_covers;
          Util.case "split shrinks diameter (Assumption 1)"
            test_box_split_shrinks_diameter;
          Util.case "clamp projects" test_box_clamp_projects;
          Util.case "samples inside" test_box_sample_inside;
          Util.case "hull" test_box_hull;
          Util.case "corner" test_box_corner;
          Util.case "equal is bitwise" test_box_equal_is_bitwise;
        ] );
      ( "soundness",
        [
          Util.case "interval" test_interval_soundness;
          Util.case "zonotope (DeepZ)" test_zonotope_soundness;
          Util.case "zonotope (AI2 join)" test_zonotope_join_soundness;
          Util.case "powersets" test_powerset_soundness;
          Util.case "interval + maxpool" test_interval_maxpool_soundness;
          Util.case "zonotope + maxpool" test_zonotope_maxpool_soundness;
        ] );
      ( "interval",
        [
          Util.case "affine exact on points" test_interval_affine_exact_on_point;
          Util.case "relu exact" test_interval_relu_exact;
          Util.case "meets" test_interval_meets;
        ] );
      ( "zonotope",
        [
          Util.case "affine exact" test_zonotope_affine_exact;
          Util.case "tracks correlations" test_zonotope_tracks_correlation;
          Util.case "relu sound" test_zonotope_relu_sound_per_dim;
          Util.case "meet_ge0 sound" test_zonotope_meet_ge0_sound;
          Util.case "meet detects empty" test_zonotope_meet_detects_empty;
          Util.case "project zero" test_zonotope_project_zero;
          Util.case "join contains both" test_zonotope_join_contains_both;
          Util.case "order reduction sound" test_zonotope_order_reduce_sound;
        ] );
      ( "powerset",
        [
          Util.case "disjunct budget" test_powerset_respects_budget;
          Util.case "example 2.3 separation" test_powerset_separation_on_ex23;
        ] );
      ( "symbolic",
        [
          Util.case "sound on random nets" test_symbolic_soundness;
          Util.case "tracks correlations" test_symbolic_tracks_correlation;
          Util.case "proves example 2.2" test_symbolic_proves_example_2_2;
          Util.case "maxpool fallback sound" test_symbolic_maxpool_fallback_sound;
          Util.case "rejects powerset lift" test_symbolic_rejects_powerset;
          Util.case "string roundtrip" test_symbolic_string_roundtrip;
        ] );
      ( "dispatch",
        [
          Util.case "string roundtrip" test_domain_string_roundtrip;
          Util.case "rejects malformed" test_domain_of_string_rejects;
          Util.case "module names" test_domain_get_names;
        ] );
    ]
