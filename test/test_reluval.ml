open Linalg
open Domains

let unit_box dim = Box.create ~lo:(Vec.zeros dim) ~hi:(Vec.create dim 1.0)

(* ------------------------------------------------------------------ *)
(* Symbolic intervals *)

let test_symbolic_identity_on_inputs () =
  let box = Box.create ~lo:[| -1.0; 0.5 |] ~hi:[| 2.0; 0.75 |] in
  let s = Reluval.Symbolic_interval.of_box box in
  Alcotest.(check (pair (float 1e-12) (float 1e-12))) "input 0" (-1.0, 2.0)
    (Reluval.Symbolic_interval.bounds s 0);
  Alcotest.(check (pair (float 1e-12) (float 1e-12))) "input 1" (0.5, 0.75)
    (Reluval.Symbolic_interval.bounds s 1)

let test_symbolic_affine_exact () =
  (* One affine layer: symbolic bounds are exact (match corner sweep). *)
  Util.repeat ~seed:120 (fun rng _ ->
      let box = Util.small_box rng 2 in
      let w = Mat.init 2 2 (fun _ _ -> Rng.gaussian rng) in
      let b = Vec.init 2 (fun _ -> Rng.gaussian rng) in
      let s =
        Reluval.Symbolic_interval.affine w b
          (Reluval.Symbolic_interval.of_box box)
      in
      for i = 0 to 1 do
        let lo, hi = Reluval.Symbolic_interval.bounds s i in
        let best_lo = ref infinity and best_hi = ref neg_infinity in
        for mask = 0 to 3 do
          let y = Vec.add (Mat.matvec w (Box.corner box mask)) b in
          best_lo := Stdlib.min !best_lo y.(i);
          best_hi := Stdlib.max !best_hi y.(i)
        done;
        Util.check_close ~eps:1e-8 "exact lo" !best_lo lo;
        Util.check_close ~eps:1e-8 "exact hi" !best_hi hi
      done)

let test_symbolic_soundness_random_nets () =
  Util.repeat ~seed:121 ~count:30 (fun rng _ ->
      let net = Util.small_net rng in
      let box = Util.small_box rng net.Nn.Network.input_dim in
      let s = Reluval.Symbolic_interval.propagate net box in
      for _ = 1 to 40 do
        let x = Box.sample rng box in
        let y = Nn.Network.eval net x in
        for i = 0 to net.Nn.Network.output_dim - 1 do
          let lo, hi = Reluval.Symbolic_interval.bounds s i in
          Util.check_true
            (Printf.sprintf "y%d = %g within [%g, %g]" i y.(i) lo hi)
            (y.(i) >= lo -. 1e-6 && y.(i) <= hi +. 1e-6)
        done
      done)

let test_symbolic_margin_sound () =
  Util.repeat ~seed:122 ~count:20 (fun rng _ ->
      let net = Util.small_net rng in
      let box = Util.small_box rng net.Nn.Network.input_dim in
      let s = Reluval.Symbolic_interval.propagate net box in
      let m = net.Nn.Network.output_dim in
      let target = Rng.int rng m in
      let j = (target + 1) mod m in
      let lo, hi = Reluval.Symbolic_interval.margin_bounds s ~target ~j in
      for _ = 1 to 40 do
        let y = Nn.Network.eval net (Box.sample rng box) in
        let diff = y.(target) -. y.(j) in
        Util.check_true "margin within bounds"
          (diff >= lo -. 1e-6 && diff <= hi +. 1e-6)
      done)

let test_symbolic_tighter_than_interval () =
  (* Symbolic intervals keep input correlations, so they are at least
     as tight as plain interval propagation on ReLU-free layers and
     usually tighter on ReLU nets; we assert it for the linear case. *)
  Util.repeat ~seed:123 (fun rng _ ->
      let d = 3 in
      let w1 = Mat.init d d (fun _ _ -> Rng.gaussian rng) in
      let w2 = Mat.init 2 d (fun _ _ -> Rng.gaussian rng) in
      let net =
        Nn.Network.create ~input_dim:d
          [ Nn.Layer.affine w1 (Vec.zeros d); Nn.Layer.affine w2 (Vec.zeros 2) ]
      in
      let box = Util.small_box rng d in
      let s = Reluval.Symbolic_interval.propagate net box in
      let bi = Absint.Analyzer.output_bounds net box Domain.interval in
      for i = 0 to 1 do
        let slo, shi = Reluval.Symbolic_interval.bounds s i in
        let ilo, ihi = bi.(i) in
        Util.check_true "symbolic at least as tight"
          (slo >= ilo -. 1e-8 && shi <= ihi +. 1e-8)
      done)

let test_symbolic_rejects_maxpool () =
  let rng = Rng.create 124 in
  let input = Nn.Shape.create ~channels:1 ~height:4 ~width:4 in
  let net = Nn.Init.lenet_like rng ~input ~classes:3 in
  Alcotest.check_raises "maxpool unsupported"
    (Failure "Symbolic_interval: max pooling is not supported") (fun () ->
      ignore (Reluval.Symbolic_interval.propagate net (unit_box 16)))

(* ------------------------------------------------------------------ *)
(* The ReluVal solver *)

let test_reluval_verifies_xor () =
  let net = Nn.Init.xor () in
  let prop =
    Common.Property.create
      ~region:(Box.create ~lo:[| 0.3; 0.3 |] ~hi:[| 0.7; 0.7 |])
      ~target:1 ()
  in
  let report = Reluval.run net prop in
  Util.check_true "verified" (report.Reluval.outcome = Common.Outcome.Verified);
  Util.check_true "used refinement" (report.Reluval.regions_analyzed >= 1)

let test_reluval_sound_on_random_nets () =
  Util.repeat ~seed:125 ~count:20 (fun rng _ ->
      let net = Util.small_net rng in
      let box = Util.small_box rng net.Nn.Network.input_dim in
      let k = Rng.int rng net.Nn.Network.output_dim in
      let prop = Common.Property.create ~region:box ~target:k () in
      let report =
        Reluval.run ~budget:(Common.Budget.of_steps 500) net prop
      in
      match report.Reluval.outcome with
      | Common.Outcome.Verified ->
          Util.check_true "no sampled violation"
            (Common.Property.check_samples rng net prop ~n:200 = None)
      | Common.Outcome.Refuted x ->
          Util.check_true "witness in region" (Box.contains box x);
          Util.check_true "witness violates"
            (not (Common.Property.holds_at net prop x))
      | Common.Outcome.Timeout | Common.Outcome.Unknown -> ())

let test_reluval_respects_budget () =
  let rng = Rng.create 126 in
  (* A hard false-ish property: a wide region on a random net. *)
  let net = Util.random_dense rng [ 6; 20; 20; 3 ] in
  let prop = Common.Property.create ~region:(unit_box 6) ~target:0 () in
  let budget = Common.Budget.of_steps 10 in
  let report = Reluval.run ~budget net prop in
  match report.Reluval.outcome with
  | Common.Outcome.Timeout ->
      Util.check_true "stopped promptly" (report.Reluval.regions_analyzed <= 11)
  | Common.Outcome.Verified | Common.Outcome.Refuted _ -> ()
  | Common.Outcome.Unknown -> Alcotest.fail "unexpected unknown"

let test_gradient_interval_bounds_point_gradients () =
  (* The interval gradient magnitude must dominate the concrete gradient
     magnitude at every point of the region. *)
  Util.repeat ~seed:128 ~count:20 (fun rng _ ->
      let net = Util.small_net rng in
      let box = Util.small_box rng net.Nn.Network.input_dim in
      let target = Rng.int rng net.Nn.Network.output_dim in
      let bound = Reluval.gradient_interval net box ~target in
      for _ = 1 to 20 do
        let x = Box.sample rng box in
        let g = Nn.Grad.grad_output net ~x ~k:target in
        Array.iteri
          (fun i gi ->
            Util.check_true
              (Printf.sprintf "grad bound %g >= |%g|" bound.(i) gi)
              (bound.(i) >= abs_float gi -. 1e-7))
          g
      done)

let test_point_gradient_smear_agrees_on_verdicts () =
  (* The smear heuristic changes split order, never verdicts. *)
  let config =
    { Reluval.default_config with Reluval.smear = Reluval.Point_gradient }
  in
  Util.repeat ~seed:129 ~count:10 (fun rng _ ->
      let net = Util.small_net rng in
      let box = Util.small_box rng net.Nn.Network.input_dim in
      let k = Rng.int rng net.Nn.Network.output_dim in
      let prop = Common.Property.create ~region:box ~target:k () in
      let budget () = Common.Budget.of_steps 2_000 in
      let a = (Reluval.run ~budget:(budget ()) net prop).Reluval.outcome in
      let b =
        (Reluval.run ~config ~budget:(budget ()) net prop).Reluval.outcome
      in
      Util.check_true "agree" (Common.Outcome.agrees a b))

let test_reluval_unknown_on_maxpool () =
  let rng = Rng.create 127 in
  let input = Nn.Shape.create ~channels:1 ~height:4 ~width:4 in
  let net = Nn.Init.lenet_like rng ~input ~classes:3 in
  let prop = Common.Property.create ~region:(unit_box 16) ~target:0 () in
  let report = Reluval.run net prop in
  Util.check_true "unknown" (report.Reluval.outcome = Common.Outcome.Unknown)

let () =
  Alcotest.run "reluval"
    [
      ( "symbolic-interval",
        [
          Util.case "identity on inputs" test_symbolic_identity_on_inputs;
          Util.case "affine exact" test_symbolic_affine_exact;
          Util.case "sound on random nets" test_symbolic_soundness_random_nets;
          Util.case "margin bounds sound" test_symbolic_margin_sound;
          Util.case "tighter than intervals (linear)" test_symbolic_tighter_than_interval;
          Util.case "rejects maxpool" test_symbolic_rejects_maxpool;
        ] );
      ( "solver",
        [
          Util.case "verifies xor" test_reluval_verifies_xor;
          Util.case "sound on random nets" test_reluval_sound_on_random_nets;
          Util.case "respects budget" test_reluval_respects_budget;
          Util.case "gradient interval dominates" test_gradient_interval_bounds_point_gradients;
          Util.case "smear variants agree" test_point_gradient_smear_agrees_on_verdicts;
          Util.case "unknown on maxpool" test_reluval_unknown_on_maxpool;
        ] );
    ]
