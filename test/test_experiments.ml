open Linalg
open Domains

(* A tiny workload shared by the harness tests: the XOR network dressed
   up as a suite entry, with one true and one false property. *)
let tiny_workload () =
  let net = Nn.Init.xor () in
  let entry =
    {
      Datasets.Suite.name = "xor";
      description = "xor test network";
      net;
      image_spec = Datasets.Synth_images.tiny;
      convolutional = false;
      test_accuracy = 1.0;
    }
  in
  let region = Box.create ~lo:[| 0.3; 0.3 |] ~hi:[| 0.7; 0.7 |] in
  let props =
    [
      Common.Property.create ~name:"holds" ~region ~target:1 ();
      Common.Property.create ~name:"fails" ~region ~target:0 ();
    ]
  in
  [ (entry, props) ]

let conv_workload () =
  let rng = Rng.create 170 in
  let input = Nn.Shape.create ~channels:1 ~height:4 ~width:4 in
  let net = Nn.Init.lenet_like rng ~input ~classes:3 in
  let entry =
    {
      Datasets.Suite.name = "tiny-conv";
      description = "conv test network";
      net;
      image_spec = Datasets.Synth_images.tiny;
      convolutional = true;
      test_accuracy = 0.0;
    }
  in
  let center = Vec.create 16 0.5 in
  let prop =
    Common.Property.create ~name:"conv-prop"
      ~region:(Box.of_center_radius center 0.01)
      ~target:(Nn.Network.classify net center)
      ()
  in
  [ (entry, [ prop ]) ]

(* ------------------------------------------------------------------ *)
(* Tools *)

let test_charon_tool_solves_both () =
  let results =
    Experiments.Runner.run_suite ~seed:1 ~timeout:10.0
      [ Experiments.Tool.charon () ]
      (tiny_workload ())
  in
  Alcotest.(check int) "two results" 2 (List.length results);
  List.iter
    (fun (r : Experiments.Runner.result) ->
      Util.check_true "solved" (Common.Outcome.is_solved r.Experiments.Runner.outcome))
    results

let test_ai2_tool_cannot_falsify () =
  let results =
    Experiments.Runner.run_suite ~seed:1 ~timeout:10.0
      [ Experiments.Tool.ai2 Domain.zonotope_join ]
      (tiny_workload ())
  in
  List.iter
    (fun (r : Experiments.Runner.result) ->
      match r.Experiments.Runner.outcome with
      | Common.Outcome.Refuted _ -> Alcotest.fail "AI2 cannot falsify"
      | Common.Outcome.Verified | Common.Outcome.Unknown
      | Common.Outcome.Timeout ->
          ())
    results

let test_tool_names () =
  Alcotest.(check string) "ai2 zonotope name" "AI2-Zonotope"
    (Experiments.Tool.ai2 Domain.zonotope_join).Experiments.Tool.name;
  Alcotest.(check string) "ai2 bounded name" "AI2-Bounded64"
    (Experiments.Tool.ai2 (Domain.powerset Domain.Zonotope_join_base 64))
      .Experiments.Tool.name;
  Util.check_true "reluval lacks conv support"
    (not Experiments.Tool.reluval.Experiments.Tool.supports_conv)

let test_conv_excluded_for_complete_tools () =
  let results =
    Experiments.Runner.run_suite ~seed:1 ~timeout:5.0
      [ Experiments.Tool.reluval; Experiments.Tool.reluplex ]
      (conv_workload ())
  in
  List.iter
    (fun (r : Experiments.Runner.result) ->
      Util.check_true "excluded as unknown"
        (r.Experiments.Runner.outcome = Common.Outcome.Unknown);
      Util.check_close ~eps:0.0 "zero time" 0.0 r.Experiments.Runner.time)
    results

let test_portfolio_tool_solves_both () =
  let results =
    Experiments.Runner.run_suite ~seed:1 ~timeout:10.0
      [ Experiments.Tool.charon_then_reluplex ~split:0.5 () ]
      (tiny_workload ())
  in
  List.iter
    (fun (r : Experiments.Runner.result) ->
      Util.check_true "solved"
        (Common.Outcome.is_solved r.Experiments.Runner.outcome))
    results

let test_portfolio_rejects_bad_split () =
  Alcotest.check_raises "split out of range"
    (Invalid_argument "Tool.charon_then_reluplex: split must be in (0, 1)")
    (fun () -> ignore (Experiments.Tool.charon_then_reluplex ~split:1.5 ()))

(* ------------------------------------------------------------------ *)
(* Runner bookkeeping *)

let test_runner_filters () =
  let results =
    Experiments.Runner.run_suite ~seed:1 ~timeout:10.0
      [ Experiments.Tool.charon (); Experiments.Tool.reluval ]
      (tiny_workload ())
  in
  Alcotest.(check int) "four results" 4 (List.length results);
  Alcotest.(check int) "by tool" 2
    (List.length (Experiments.Runner.by_tool results "Charon"));
  Alcotest.(check int) "by network" 4
    (List.length (Experiments.Runner.by_network results "xor"));
  Alcotest.(check (list string)) "network order" [ "xor" ]
    (Experiments.Runner.networks results)

let test_runner_consistency_clean () =
  let results =
    Experiments.Runner.run_suite ~seed:1 ~timeout:10.0
      [ Experiments.Tool.charon (); Experiments.Tool.reluplex ]
      (tiny_workload ())
  in
  Alcotest.(check int) "no disagreements" 0
    (List.length (Experiments.Runner.consistency_errors results))

let test_runner_consistency_detects_conflict () =
  let mk tool outcome =
    {
      Experiments.Runner.tool;
      network = "n";
      property = "p";
      outcome;
      time = 0.0;
    }
  in
  let errors =
    Experiments.Runner.consistency_errors
      [ mk "a" Common.Outcome.Verified; mk "b" (Common.Outcome.Refuted [| 0.0 |]) ]
  in
  Alcotest.(check int) "one conflict" 1 (List.length errors)

let test_csv_export () =
  let results =
    [
      {
        Experiments.Runner.tool = "T";
        network = "n";
        property = "p";
        outcome = Common.Outcome.Verified;
        time = 0.5;
      };
    ]
  in
  let csv = Experiments.Runner.to_csv results in
  Alcotest.(check string) "csv"
    "tool,network,property,outcome,time_seconds\nT,n,p,verified,0.500000\n" csv

(* ------------------------------------------------------------------ *)
(* Cactus *)

let test_cactus_series () =
  let mk name time outcome =
    {
      Experiments.Runner.tool = "T";
      network = "n";
      property = name;
      outcome;
      time;
    }
  in
  let results =
    [
      mk "a" 3.0 Common.Outcome.Verified;
      mk "b" 1.0 (Common.Outcome.Refuted [| 0.0 |]);
      mk "c" 2.0 Common.Outcome.Timeout;
    ]
  in
  let s = Experiments.Cactus.of_results results ~tool:"T" in
  Alcotest.(check int) "solved count" 2 (Experiments.Cactus.solved_count s);
  Util.check_close ~eps:1e-12 "total time" 4.0 (Experiments.Cactus.total_time s);
  (* Sorted by time: (0,0), (1,1.0), (2,4.0). *)
  Alcotest.(check (list (pair int (float 1e-9)))) "points"
    [ (0, 0.0); (1, 1.0); (2, 4.0) ]
    s.Experiments.Cactus.points

let test_cactus_monotone () =
  Util.repeat ~seed:171 (fun rng _ ->
      let results =
        List.init 10 (fun i ->
            {
              Experiments.Runner.tool = "T";
              network = "n";
              property = string_of_int i;
              outcome =
                (if Rng.bool rng then Common.Outcome.Verified
                 else Common.Outcome.Timeout);
              time = Rng.float rng 2.0;
            })
      in
      let s = Experiments.Cactus.of_results results ~tool:"T" in
      let rec monotone = function
        | (n1, t1) :: ((n2, t2) :: _ as rest) ->
            Util.check_true "counts increase" (n2 = n1 + 1);
            Util.check_true "times increase" (t2 >= t1);
            monotone rest
        | [ _ ] | [] -> ()
      in
      monotone s.Experiments.Cactus.points)

(* ------------------------------------------------------------------ *)
(* Robustness curves *)

let test_curve_monotone_and_consistent () =
  let rng = Rng.create 172 in
  let net = Util.random_dense rng [ 3; 8; 3 ] in
  let images = Array.init 10 (fun _ -> Vec.init 3 (fun _ -> Rng.float rng 1.0)) in
  let epsilons = [ 0.001; 0.01; 0.05; 0.2 ] in
  let points =
    Experiments.Robustness_curve.compute ~timeout:5.0 ~seed:4 net ~images
      ~epsilons
  in
  Alcotest.(check int) "one point per epsilon" (List.length epsilons)
    (List.length points);
  List.iter
    (fun (p : Experiments.Robustness_curve.point) ->
      Alcotest.(check int) "counts partition the images" 10
        (p.Experiments.Robustness_curve.certified
        + p.Experiments.Robustness_curve.falsified
        + p.Experiments.Robustness_curve.undecided))
    points;
  (* With an ample budget, certified accuracy is non-increasing and the
     falsified fraction non-decreasing in epsilon (a falsifying point
     for a small ball also lies in every larger ball). *)
  let rec check = function
    | (a : Experiments.Robustness_curve.point) :: (b :: _ as rest) ->
        Util.check_true "certified non-increasing"
          (b.Experiments.Robustness_curve.certified
          <= a.Experiments.Robustness_curve.certified);
        Util.check_true "falsified non-decreasing"
          (b.Experiments.Robustness_curve.falsified
          >= a.Experiments.Robustness_curve.falsified);
        check rest
    | [ _ ] | [] -> ()
  in
  check points

(* ------------------------------------------------------------------ *)
(* Ascii plots *)

let test_ascii_plot_renders_markers () =
  let out =
    Experiments.Ascii_plot.render
      [ ("a", [ (0.0, 0.0); (1.0, 1.0) ]); ("b", [ (0.5, 0.5) ]) ]
  in
  Util.check_true "first marker" (String.contains out '*');
  Util.check_true "second marker" (String.contains out 'o');
  Util.check_true "legend a" (String.length out > 0 && String.contains out 'a');
  (* Axis annotations include the data range. *)
  let has_substring s sub =
    let n = String.length s and m = String.length sub in
    let rec go i = i + m <= n && (String.sub s i m = sub || go (i + 1)) in
    go 0
  in
  Util.check_true "legend names" (has_substring out "* = a" && has_substring out "o = b")

let test_ascii_plot_empty () =
  Alcotest.(check string) "empty notice" "(no data to plot)\n"
    (Experiments.Ascii_plot.render []);
  Alcotest.(check string) "empty series skipped" "(no data to plot)\n"
    (Experiments.Ascii_plot.render [ ("a", []) ])

let test_ascii_plot_constant_series () =
  (* Degenerate spans (single point, constant y) must not divide by
     zero. *)
  let out = Experiments.Ascii_plot.render [ ("c", [ (1.0, 2.0) ]) ] in
  Util.check_true "renders" (String.length out > 0)

(* ------------------------------------------------------------------ *)
(* Training pipeline *)

let test_acas_problems_count () =
  let problems = Experiments.Training.acas_problems ~seed:3 in
  Alcotest.(check int) "twelve training problems" 12 (List.length problems)

let test_learned_policy_cache () =
  let path = Filename.temp_file "charon_policy_cache" ".txt" in
  Sys.remove path;
  Fun.protect
    ~finally:(fun () -> if Sys.file_exists path then Sys.remove path)
    (fun () ->
      (* First call trains and caches; this is slow-ish but bounded. *)
      let p1 = Experiments.Training.learned_policy ~cache:path ~seed:3 () in
      Util.check_true "cache written" (Sys.file_exists path);
      let p2 = Experiments.Training.learned_policy ~cache:path ~seed:3 () in
      match (Charon.Policy.to_vector p1, Charon.Policy.to_vector p2) with
      | Some v1, Some v2 -> Util.check_vec ~eps:0.0 "cache hit" v1 v2
      | _ -> Alcotest.fail "expected linear policies")

let () =
  Alcotest.run "experiments"
    [
      ( "tools",
        [
          Util.case "charon solves both" test_charon_tool_solves_both;
          Util.case "ai2 cannot falsify" test_ai2_tool_cannot_falsify;
          Util.case "tool names" test_tool_names;
          Util.case "conv excluded for complete tools"
            test_conv_excluded_for_complete_tools;
          Util.case "portfolio tool solves both" test_portfolio_tool_solves_both;
          Util.case "portfolio rejects bad split" test_portfolio_rejects_bad_split;
        ] );
      ( "runner",
        [
          Util.case "filters" test_runner_filters;
          Util.case "consistency clean" test_runner_consistency_clean;
          Util.case "consistency detects conflicts"
            test_runner_consistency_detects_conflict;
          Util.case "csv export" test_csv_export;
        ] );
      ( "cactus",
        [
          Util.case "series construction" test_cactus_series;
          Util.case "series monotone" test_cactus_monotone;
        ] );
      ( "ascii-plot",
        [
          Util.case "renders markers and legend" test_ascii_plot_renders_markers;
          Util.case "empty input" test_ascii_plot_empty;
          Util.case "degenerate spans" test_ascii_plot_constant_series;
        ] );
      ( "curve",
        [ Util.slow_case "monotone and consistent" test_curve_monotone_and_consistent ] );
      ( "training",
        [
          Util.case "acas problem count" test_acas_problems_count;
          Util.slow_case "policy cache" test_learned_policy_cache;
        ] );
    ]
