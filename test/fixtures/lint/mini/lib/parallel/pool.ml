(* The reachability root of the fixture mini-repo: anything that this
   library (transitively) links is "runs on worker domains". *)
let run f = f ()
