(* Known-bad fixture for the float-eq rule. *)

let is_half x = x = 0.5

let drifted a b = a <> b +. 1e-9

let same_box a b = (a : float) == b
