(* Known-bad fixture for the poly-compare rule. *)

let sign x = compare x 0.5

let worst a b = max (a +. 1.0) b

let tightest a b = min a (b *. 2.0)

let sort_scores xs = List.sort compare (List.map float_of_int xs)
