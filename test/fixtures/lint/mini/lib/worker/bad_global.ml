(* Known-bad fixture for the domain-unsafe-global rule: this library is
   reachable from the [parallel] root, so toplevel mutable state races. *)

let counter = ref 0

let cache = Hashtbl.create 16

type state = { mutable hits : int }
