(* Seeded: malformed or unverifiable [@race.*] annotations
   (race-bad-annotation) — an atomic claim on a non-atomic value, a
   guard that is never acquired anywhere in the file, and an annotation
   in a position it does not apply to. *)

let flag = ref false [@@race.atomic]

let count = Atomic.make 0 [@@race.guarded_by "nonexistent"]

type r = { mutable n : int } [@@race.read_only]
