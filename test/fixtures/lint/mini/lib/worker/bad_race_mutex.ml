(* Seeded race: accesses to [@race.guarded_by] state without the named
   mutex on the syntactic path (race-wrong-mutex) — once with no lock
   at all, once holding a different mutex. *)

type t = { mutex : Mutex.t; mutable count : int } [@@race.guarded_by "mutex"]

let other = Mutex.create ()

let bump t = t.count <- t.count + 1

let bump_wrong t =
  Mutex.lock other;
  t.count <- t.count + 1;
  Mutex.unlock other

let bump_locked t =
  Mutex.lock t.mutex;
  t.count <- t.count + 1;
  Mutex.unlock t.mutex
