(* Known-bad fixture for the catch-all-exn rule. *)

let swallow g = try g () with _ -> 0

let swallow_exn g = try g () with _e -> 0
