(* Known-bad fixture for the printf-in-lib rule. *)

let report x = Printf.printf "%d\n" x

let shout () = print_endline "hello from a library"
