(* Seeded race: a mutable global written by a function transitively
   reachable from a spawn point, with no declared discipline.  The race
   pass must flag the accesses in [record] (race-unguarded-global). *)

let table = Hashtbl.create 16

let record k v = Hashtbl.replace table k v

let launch () = Pool.run (fun () -> record "x" 1)
