(* Seeded race: calling a [@race.locked] function without holding its
   mutex (race-locked-caller). *)

type s = { m : Mutex.t; mutable v : int } [@@race.guarded_by "m"]

let advance s = s.v <- s.v + 1 [@@race.locked "m"]

let poke s = advance s

let poke_locked s =
  Mutex.lock s.m;
  advance s;
  Mutex.unlock s.m
