(* Accept cases for the race pass: every declared discipline below is
   machine-checked and holds, so this file must stay clean under both
   passes. *)

(* Atomic discipline: lock-free counter bumped from worker domains. *)
let hits = Atomic.make 0 [@@race.atomic]

let bump () = Atomic.incr hits

let launch () = Pool.run (fun () -> bump ())

(* Domain-local discipline: each Kpool task writes only its own slot,
   so the array is domain-disjoint by construction. *)
let gather n =
  let out = (Array.make n 0 [@race.domain_local]) in
  Kpool.run (fun i -> out.(i) <- i);
  out

(* Guarded discipline: the mutex really is held on every access. *)
type box = { lock : Mutex.t; mutable value : int } [@@race.guarded_by "lock"]

let read b =
  Mutex.lock b.lock;
  let v = b.value in
  Mutex.unlock b.lock;
  v

(* The failure-park idiom: a catch-all that captures the backtrace for
   a later Printexc.raise_with_backtrace is not a swallowed exception. *)
let parked = Atomic.make None [@@race.atomic]

let guard f =
  try f ()
  with e ->
    let bt = Printexc.get_raw_backtrace () in
    Atomic.set parked (Some (e, bt))

let repark () =
  match Atomic.get parked with
  | Some (e, bt) -> Printexc.raise_with_backtrace e bt
  | None -> ()
