(* Polymorphic (dis)equality on arrays of floats: element comparisons
   run the float structural-equality path (-0.0 = 0.0, NaN <> NaN), so
   two bit-different arrays can compare equal. *)

let literal () = [| 1.0; 2.0 |] = [| 1.0; -0.0 |]

let seeded w = Array.make 3 0.5 <> w

let annotated (a : float array) b = (a : float array) = b

let vec_alias lo hi = (lo : Vec.t) <> hi
