(* Fixture for [@lint.allow]: every construct below would be a finding,
   and every one is annotated — so the lint must report them as
   suppressed (audit trail), not as findings. *)

let counter = ref 0 [@@lint.allow "domain-unsafe-global"]

let is_half x = (x = 0.5 [@lint.allow "float-eq"])

let sign x = (compare x 0.5 [@lint.allow "poly-compare"])
