(* Seeded race: a closure-captured ref escaping into Kpool.run — every
   helper domain runs the closure, so the unsynchronized read-modify-
   write on [total] loses updates (race-captured-escape). *)

let sum tasks =
  let total = ref 0 in
  Kpool.run (fun i -> total := !total + i);
  ignore tasks;
  !total
