(* Known-bad fixture for the unsafe-array rule. *)

let get a i = Array.unsafe_get a i

let set a i v = Array.unsafe_set a i v
