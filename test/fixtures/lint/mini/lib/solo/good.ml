(* Known-good twins of every bad fixture: none of these may be flagged.
   [solo] does not link [parallel], so its toplevel state is also fine. *)

(* poly-compare twins: Float.* replacements. *)
let sign x = Float.compare x 0.5

let worst a b = Float.max (a +. 1.0) b

let sort_scores xs = List.sort Float.compare (List.map float_of_int xs)

(* float-eq twins: tolerance check, and the exempt exact-zero test. *)
let is_half x = abs_float (x -. 0.5) < 1e-9

let is_zero x = x = 0.0

(* unsafe-array twin: bounds-checked access. *)
let get (a : float array) i = a.(i)

(* catch-all-exn twin: a specific exception. *)
let lookup g = try g () with Not_found -> 0

(* domain-unsafe-global twin: mutable, but not parallel-reachable. *)
let counter = ref 0

type state = { mutable hits : int }
