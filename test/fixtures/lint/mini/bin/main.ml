(* printf-in-lib twin: executables own stdout, so printing here is
   fine. *)
let () = print_endline "ok"
