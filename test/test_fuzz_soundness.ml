(* Fuzz harness for the soundness contract (docs/testing.md).

   Random small ReLU networks and input boxes are thrown at the full
   decision procedure.  The one unforgivable answer is an unsound
   [Verified]: every proof is cross-examined by two independent
   refutation attempts — dense random sampling of the region and a
   dedicated PGD attack — either of which finding a violating point
   means the abstract proof accepted a falsifiable property.
   Refutations are held to the delta-completeness contract instead
   (witness inside the region, objective at most delta).

   Case count: CHARON_FUZZ_CASES, defaulting to a quick smoke run under
   the default `dune runtest`.  `dune build @fuzz` reruns the same
   harness at 500 cases (see test/dune).  All randomness flows from
   Util.repeat, so any failure reproduces from the printed
   CHARON_TEST_SEED. *)

open Linalg
open Domains

let cases =
  match Sys.getenv_opt "CHARON_FUZZ_CASES" with
  | None -> 50
  | Some s -> (
      match int_of_string_opt (String.trim s) with
      | Some n when n > 0 -> n
      | _ -> 50)

let delta = 1e-4

(* A PGD attack noticeably stronger than the one inside the verifier,
   so the cross-check is not just replaying the search that already
   failed: more restarts, more steps, and no early stop above 0. *)
let attack_config =
  {
    Optim.Pgd.steps = 80;
    restarts = 10;
    step_scale = 0.25;
    early_stop = Some 0.0;
  }

(* One proof cache shared by every fuzz case.  Keys carry the network
   digest, so facts from one random net can never leak into another —
   and any bug in that isolation, or in the canonical-partition reuse
   inside a case, surfaces here as an unsound Verified that the
   sampling/PGD cross-examination catches. *)
let proofcache = Charon.Proofcache.create ~capacity:100_000 ()

let check_case rng i =
  let net = Util.small_net rng in
  let box = Util.small_box rng net.Nn.Network.input_dim in
  let k = Rng.int rng net.Nn.Network.output_dim in
  let prop = Common.Property.create ~region:box ~target:k () in
  (* Every fifth case drains the region queue on two domains, so the
     parallel path faces the same fuzzer as the sequential one. *)
  let workers = if i mod 5 = 0 then 2 else 1 in
  let report =
    Charon.Verify.run
      ~budget:(Common.Budget.of_steps 20_000)
      ~workers ~proofcache ~rng:(Rng.split rng)
      ~policy:Charon.Policy.default net prop
  in
  match report.Charon.Verify.outcome with
  | Common.Outcome.Verified -> (
      (match Common.Property.check_samples rng net prop ~n:1_000 with
      | None -> ()
      | Some x ->
          Alcotest.failf "unsound: verified, but sampling found %s"
            (Format.asprintf "%a" Vec.pp x));
      let obj = Optim.Objective.create net ~k in
      let x, f = Optim.Pgd.minimize ~config:attack_config ~rng obj box in
      if f <= 0.0 then
        Alcotest.failf "unsound: verified, but PGD found F(%s) = %.17g"
          (Format.asprintf "%a" Vec.pp x)
          f)
  | Common.Outcome.Refuted x ->
      Util.check_true "witness inside the region" (Box.contains box x);
      Util.check_true "witness is a delta-counterexample"
        (Optim.Objective.is_delta_counterexample
           (Optim.Objective.create net ~k)
           ~delta x)
  | Common.Outcome.Timeout -> ()
  | Common.Outcome.Unknown ->
      (* A precision limit (depth cap or an unsplittable region), not a
         verdict: allowed, like Timeout, as long as it is never wrong. *)
      ()

let test_fuzz_soundness () = Util.repeat ~seed:20_190_622 ~count:cases check_case

let () =
  Alcotest.run "fuzz-soundness"
    [
      ( "fuzz",
        [
          Util.case
            (Printf.sprintf "random nets never verified unsoundly (%d cases)"
               cases)
            test_fuzz_soundness;
        ] );
    ]
