(* Telemetry: spans, counters, the JSONL trace sink, and the guarantee
   that turning any of it on does not perturb verification results. *)

open Linalg

let temp_trace () = Filename.temp_file "charon_trace" ".jsonl"

let read_lines path =
  let ic = open_in path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () ->
      let rec go acc =
        match input_line ic with
        | line -> go (line :: acc)
        | exception End_of_file -> List.rev acc
      in
      go [])

let with_trace f =
  let path = temp_trace () in
  Telemetry.enable ~path ();
  let events =
    Fun.protect
      ~finally:(fun () ->
        Telemetry.disable ();
        Sys.remove path)
      (fun () ->
        f ();
        Telemetry.disable ();
        List.map Util.Json.parse (read_lines path))
  in
  events

let span_events ?name events =
  List.filter
    (fun e ->
      Util.Json.to_string (Util.Json.member "kind" e) = "span"
      &&
      match name with
      | None -> true
      | Some n -> Util.Json.to_string (Util.Json.member "name" e) = n)
    events

(* ------------------------------------------------------------------ *)
(* Disabled mode *)

let test_disabled_is_inert () =
  let c = Telemetry.Metrics.counter "test.inert" in
  Telemetry.Metrics.incr c;
  Telemetry.Metrics.add c 41;
  Alcotest.(check int) "counter stays zero" 0 (Telemetry.Metrics.value c);
  let sp = Telemetry.Span.enter "test.inert.span" in
  Telemetry.Span.exit sp;
  Util.check_true "wrap returns its value"
    (Telemetry.Span.wrap "test.inert.wrap" (fun () -> 7) = 7);
  Util.check_true "not enabled" (not (Telemetry.enabled ()))

(* ------------------------------------------------------------------ *)
(* Span nesting in the trace *)

let test_span_nesting () =
  let events =
    with_trace (fun () ->
        Telemetry.Span.wrap "test.outer" (fun () ->
            Telemetry.Span.wrap "test.inner" (fun () -> ());
            Telemetry.Span.wrap "test.inner" (fun () -> ())))
  in
  let outer =
    match span_events ~name:"test.outer" events with
    | [ e ] -> e
    | es -> Alcotest.failf "expected 1 outer span, got %d" (List.length es)
  in
  let inners = span_events ~name:"test.inner" events in
  Alcotest.(check int) "two inner spans" 2 (List.length inners);
  let id e = Util.Json.to_int (Util.Json.member "id" e) in
  let depth e = Util.Json.to_int (Util.Json.member "depth" e) in
  let ts e = Util.Json.to_int (Util.Json.member "ts" e) in
  let dur e = Util.Json.to_int (Util.Json.member "dur" e) in
  Alcotest.(check int) "outer is a root span" 0 (depth outer);
  List.iter
    (fun inner ->
      Alcotest.(check int) "inner parented to outer" (id outer)
        (Util.Json.to_int (Util.Json.member "parent" inner));
      Alcotest.(check int) "inner one level down" (depth outer + 1)
        (depth inner);
      Util.check_true "inner starts after outer" (ts inner >= ts outer);
      Util.check_true "inner contained in outer"
        (ts inner + dur inner <= ts outer + dur outer))
    inners

let test_span_attrs_and_histogram () =
  let events =
    with_trace (fun () ->
        let sp = Telemetry.Span.enter "test.attrs" in
        Telemetry.Span.exit sp
          ~attrs:(fun () -> [ ("answer", Telemetry.Jsonw.Int 42) ]))
  in
  match span_events ~name:"test.attrs" events with
  | [ e ] ->
      let attrs = Util.Json.member "attrs" e in
      Alcotest.(check int) "attr written" 42
        (Util.Json.to_int (Util.Json.member "answer" attrs));
      (* Every span feeds the histogram of the same name, so --stats
         timing tables work without a trace file. *)
      let hist =
        List.find_opt
          (fun (h : Telemetry.Metrics.histogram_stats) ->
            h.Telemetry.Metrics.name = "test.attrs")
          (Telemetry.Metrics.histograms ())
      in
      Util.check_true "span observed by histogram" (Option.is_some hist)
  | es -> Alcotest.failf "expected 1 span, got %d" (List.length es)

(* ------------------------------------------------------------------ *)
(* Counters under domains *)

let test_counter_atomicity_under_domains () =
  Telemetry.enable ();
  Fun.protect ~finally:Telemetry.disable (fun () ->
      Telemetry.Metrics.reset ();
      let c = Telemetry.Metrics.counter "test.atomic" in
      let n = 20_000 in
      Parallel.Pool.iter ~workers:4 n (fun _ -> Telemetry.Metrics.incr c);
      Alcotest.(check int) "every increment lands" n
        (Telemetry.Metrics.value c);
      let h = Telemetry.Metrics.histogram "test.atomic.h" in
      Parallel.Pool.iter ~workers:4 n (fun i ->
          Telemetry.Metrics.observe h (i mod 7));
      match
        List.find_opt
          (fun (s : Telemetry.Metrics.histogram_stats) ->
            s.Telemetry.Metrics.name = "test.atomic.h")
          (Telemetry.Metrics.histograms ())
      with
      | None -> Alcotest.fail "histogram missing from registry"
      | Some s ->
          Alcotest.(check int) "every observation lands" n
            s.Telemetry.Metrics.count;
          Alcotest.(check int) "min observation" 0 s.Telemetry.Metrics.min;
          Alcotest.(check int) "max observation" 6 s.Telemetry.Metrics.max)

let test_workers_flush_their_buffers () =
  let events =
    with_trace (fun () ->
        Parallel.Pool.iter ~workers:4 64 (fun i ->
            Telemetry.Span.wrap "test.task" (fun () -> ignore (i * i))))
  in
  Alcotest.(check int) "one span per task survives the worker exits" 64
    (List.length (span_events ~name:"test.task" events));
  let workers =
    List.sort_uniq compare
      (List.map
         (fun e -> Util.Json.to_int (Util.Json.member "worker" e))
         (span_events ~name:"parallel.worker" events))
  in
  Alcotest.(check int) "all four workers traced" 4 (List.length workers)

(* ------------------------------------------------------------------ *)
(* JSONL round-trips *)

let sample_doc =
  Telemetry.Jsonw.(
    Obj
      [
        ("name", Str "quote \" backslash \\ newline \n tab \t");
        ("int", Int (-42));
        ("float", Float 1.5);
        ("big", Float 123456.789);
        ("flag", Bool true);
        ("nothing", Null);
        ("nan_becomes_null", Float Float.nan);
        ("items", Arr [ Int 1; Str "two"; Obj [ ("three", Int 3) ] ]);
        ("empty_arr", Arr []);
        ("empty_obj", Obj []);
      ])

let test_jsonw_roundtrip_self () =
  let text = Telemetry.Jsonw.to_string sample_doc in
  let expect =
    (* NaN is written as null, so the round-tripped value differs there
       and only there. *)
    Telemetry.Jsonw.(
      Obj
        (List.map
           (fun (k, v) ->
             if k = "nan_becomes_null" then (k, Null) else (k, v))
           (match sample_doc with Obj f -> f | _ -> assert false)))
  in
  Util.check_true "parse inverts to_string"
    (Telemetry.Jsonw.parse text = expect);
  (* Pretty rendering parses back to the same value. *)
  Util.check_true "pretty parses identically"
    (Telemetry.Jsonw.parse (Telemetry.Jsonw.to_string ~pretty:true sample_doc)
    = expect)

let test_jsonw_roundtrip_test_reader () =
  (* The independently-written test JSON reader must agree with the
     telemetry writer — cross-validating both implementations. *)
  let j = Util.Json.parse (Telemetry.Jsonw.to_string sample_doc) in
  Alcotest.(check string)
    "escapes survive"
    "quote \" backslash \\ newline \n tab \t"
    (Util.Json.to_string (Util.Json.member "name" j));
  Alcotest.(check int) "negative int" (-42)
    (Util.Json.to_int (Util.Json.member "int" j));
  Util.check_true "nan rendered as null"
    (Util.Json.member "nan_becomes_null" j = Util.Json.Null);
  Alcotest.(check int) "nested array"
    3
    (Util.Json.to_int
       (Util.Json.member "three"
          (List.nth (Util.Json.to_list (Util.Json.member "items" j)) 2)))

let test_trace_lines_are_valid_json () =
  let events =
    with_trace (fun () ->
        Telemetry.Trace.instant "test.point"
          ~attrs:[ ("x", Telemetry.Jsonw.Float 0.25) ];
        Telemetry.Span.wrap "test.line" (fun () -> ()))
  in
  Util.check_true "several events" (List.length events >= 3);
  List.iter
    (fun e ->
      (* Every line is an object with the mandatory envelope fields. *)
      ignore (Util.Json.to_int (Util.Json.member "ts" e));
      ignore (Util.Json.to_string (Util.Json.member "kind" e));
      ignore (Util.Json.to_string (Util.Json.member "name" e));
      ignore (Util.Json.to_int (Util.Json.member "worker" e)))
    events

(* ------------------------------------------------------------------ *)
(* Tracing must not perturb verification *)

let verify_report ~seed ~workers net prop =
  Charon.Verify.run
    ~budget:(Common.Budget.of_steps 400)
    ~workers
    ~rng:(Rng.create seed)
    ~policy:Charon.Policy.default net prop

let test_trace_does_not_perturb_outcomes () =
  Util.repeat ~count:8 ~seed:2019 (fun rng i ->
      let net = Util.small_net rng in
      let region = Util.small_box rng net.Nn.Network.input_dim in
      let prop = Common.Property.create ~region ~target:0 () in
      let plain = verify_report ~seed:i ~workers:1 net prop in
      let path = temp_trace () in
      Telemetry.enable ~path ();
      let traced =
        Fun.protect
          ~finally:(fun () ->
            Telemetry.disable ();
            Sys.remove path)
          (fun () -> verify_report ~seed:i ~workers:1 net prop)
      in
      Util.check_true "same outcome with tracing on"
        (Common.Outcome.agrees plain.Charon.Verify.outcome
           traced.Charon.Verify.outcome);
      Alcotest.(check int) "same node count" plain.Charon.Verify.nodes
        traced.Charon.Verify.nodes;
      Alcotest.(check int) "same analyzer calls"
        plain.Charon.Verify.analyze_calls traced.Charon.Verify.analyze_calls;
      Alcotest.(check int) "same peak depth" plain.Charon.Verify.peak_depth
        traced.Charon.Verify.peak_depth)

let test_traced_verify_emits_expected_spans () =
  let net = Nn.Init.xor () in
  let region =
    Domains.Box.create ~lo:[| 0.3; 0.3 |] ~hi:[| 0.7; 0.7 |]
  in
  let prop = Common.Property.create ~region ~target:1 () in
  let events =
    with_trace (fun () -> ignore (verify_report ~seed:1 ~workers:1 net prop))
  in
  List.iter
    (fun name ->
      Util.check_true
        (Printf.sprintf "trace contains a %s span" name)
        (span_events ~name events <> []))
    [ "verify.run"; "verify.region"; "absint.layer"; "optim.pgd" ];
  (* Region spans carry the policy's outcome attribute. *)
  List.iter
    (fun e ->
      let outcome =
        Util.Json.to_string
          (Util.Json.member "outcome" (Util.Json.member "attrs" e))
      in
      Util.check_true "known outcome label"
        (List.mem outcome
           [ "proved"; "refuted"; "split"; "unsplittable"; "timeout"; "unknown" ]))
    (span_events ~name:"verify.region" events)

let () =
  Alcotest.run "telemetry"
    [
      Util.suite "state"
        [ Util.case "disabled mode is inert" test_disabled_is_inert ];
      Util.suite "spans"
        [
          Util.case "nesting" test_span_nesting;
          Util.case "attrs and histogram feed" test_span_attrs_and_histogram;
        ];
      Util.suite "metrics"
        [
          Util.case "counter atomicity under 4 domains"
            test_counter_atomicity_under_domains;
        ];
      Util.suite "trace"
        [
          Util.case "workers flush buffers" test_workers_flush_their_buffers;
          Util.case "lines are valid json" test_trace_lines_are_valid_json;
        ];
      Util.suite "jsonw"
        [
          Util.case "round-trip through own parser" test_jsonw_roundtrip_self;
          Util.case "round-trip through test reader"
            test_jsonw_roundtrip_test_reader;
        ];
      Util.suite "verify-telemetry"
        [
          Util.case "tracing does not perturb outcomes"
            test_trace_does_not_perturb_outcomes;
          Util.case "expected spans appear" test_traced_verify_emits_expected_spans;
        ];
    ]
