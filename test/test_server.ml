(* Lifecycle tests for the charon-serve daemon (docs/serving.md): a
   real daemon on a temp Unix socket, driven through the real client.

   The workload is the "staircase" network: inputs x in R^d over the
   box [-1, 1.5]^d, hidden banks relu(x_i) and relu(x_i - 1), and

     y_0 = sum_i (relu(x_i) - relu(x_i - 1))        y_1 = -eps

   Each summand is the ramp min(relu(x_i), 1), so the margin
   y_0 - y_1 is at least eps everywhere: the property always holds,
   and PGD can never refute it (eps is far above delta).  But the
   margin puts a NEGATIVE coefficient on the relu(x_i - 1) bank, so
   both intervals (which forget that the two banks share x_i) and
   zonotopes (whose crossing-ReLU relaxation is loose) underestimate
   it by about d/2 on the full box — the proof only lands after
   splitting essentially every input dimension, making verification
   cost grow geometrically with d.  One family thus dials from
   "instant" through "hundreds of milliseconds" to "effectively
   forever". *)

open Linalg

module J = Telemetry.Jsonw

let eps = 0.05

let staircase dim =
  let w1 =
    Mat.init (2 * dim) dim (fun r c ->
        if r = c || r - dim = c then 1.0 else 0.0)
  in
  let b1 = Vec.init (2 * dim) (fun r -> if r < dim then 0.0 else -1.0) in
  let w2 =
    Mat.init 2 (2 * dim) (fun r c ->
        if r = 1 then 0.0 else if c < dim then 1.0 else -1.0)
  in
  Nn.Network.create ~input_dim:dim
    [
      Nn.Layer.affine w1 b1;
      Nn.Layer.Relu;
      Nn.Layer.affine w2 [| 0.0; -.eps |];
    ]

let staircase_spec ?(name = "staircase") ?timeout ?max_steps ?(seed = 1) dim =
  {
    Server.Protocol.name;
    network = Nn.Serial.to_string (staircase dim);
    box = Domains.Box.of_center_radius (Vec.create dim 0.25) 1.25;
    target = 0;
    delta = 1e-4;
    timeout;
    max_steps;
    seed;
  }

(* ------------------------------------------------------------------ *)
(* JSON plumbing *)

let jget json path =
  let rec go json = function
    | [] -> json
    | key :: rest -> (
        match J.member key json with
        | Some v -> go v rest
        | None ->
            Alcotest.failf "no %S in %s" key (J.to_string ~pretty:true json))
  in
  go json path

let jint json path =
  match J.to_int_opt (jget json path) with
  | Some i -> i
  | None -> Alcotest.failf "not an int at %s" (String.concat "." path)

let jfloat json path =
  match J.to_float_opt (jget json path) with
  | Some f -> f
  | None -> Alcotest.failf "not a number at %s" (String.concat "." path)

let jstr json path =
  match J.to_string_opt (jget json path) with
  | Some s -> s
  | None -> Alcotest.failf "not a string at %s" (String.concat "." path)

let jbool json path =
  match jget json path with
  | J.Bool b -> b
  | _ -> Alcotest.failf "not a bool at %s" (String.concat "." path)

let check_ok json = Util.check_true "ok response" (jbool json [ "ok" ])

(* ------------------------------------------------------------------ *)
(* Daemon harness *)

let fresh_socket =
  let n = ref 0 in
  fun () ->
    incr n;
    Filename.concat
      (Filename.get_temp_dir_name ())
      (Printf.sprintf "charon-serve-test-%d-%d.sock" (Unix.getpid ()) !n)

let with_daemon ?(workers = 4) ?(cache_capacity = 16) f =
  let socket = fresh_socket () in
  let handle = Server.Daemon.start ~socket ~workers ~cache_capacity () in
  let stopped = ref false in
  let stop () =
    if not !stopped then begin
      stopped := true;
      Server.Daemon.stop handle
    end
  in
  Fun.protect ~finally:stop (fun () ->
      let r = f socket in
      stop ();
      Util.check_true "socket file removed on shutdown"
        (not (Sys.file_exists socket));
      r)

(* Label shims: these tests predate the multi-transport client and
   speak through the trusted Unix socket; the path is the address. *)
let addr socket = Server.Client.Unix_socket socket

let submit socket spec = Server.Client.submit ~addr:(addr socket) spec

let status socket id = Server.Client.status ~addr:(addr socket) id

let cancel socket id = Server.Client.cancel ~addr:(addr socket) id

let get_stats socket = Server.Client.stats ~addr:(addr socket) ()

let ping socket = Server.Client.ping ~addr:(addr socket) ()

let wait socket id = Server.Client.wait ~addr:(addr socket) ~deadline:60.0 id

(* ------------------------------------------------------------------ *)
(* Tests *)

let test_ping_and_stats () =
  with_daemon ~workers:2 (fun socket ->
      check_ok (ping socket);
      let stats = get_stats socket in
      check_ok stats;
      Alcotest.(check int) "workers" 2 (jint stats [ "workers" ]);
      Alcotest.(check int) "empty queue" 0 (jint stats [ "queue_depth" ]);
      Alcotest.(check int) "nothing queued" 0 (jint stats [ "queued" ]);
      Alcotest.(check int) "nothing in flight" 0 (jint stats [ "in_flight" ]);
      (* The scheduler-wide subregion proof cache reports through the
         same stats response. *)
      Alcotest.(check int) "proof cache empty" 0
        (jint stats [ "proofcache"; "entries" ]);
      Alcotest.(check int) "proof cache idle" 0
        (jint stats [ "proofcache"; "lookups" ]))

let test_verdicts_round_trip () =
  with_daemon (fun socket ->
      (* The staircase property holds with margin eps. *)
      let id, _ = submit socket (staircase_spec 3) in
      let final = wait socket id in
      Alcotest.(check string) "state" "done" (jstr final [ "state" ]);
      Alcotest.(check string)
        "verified" "verified"
        (jstr final [ "verdict"; "verdict" ]);
      (* Target class 1 loses by exactly eps everywhere: refuted, and
         the bit-exact witness string round-trips through the wire. *)
      let spec = { (staircase_spec 3) with Server.Protocol.target = 1 } in
      let id, _ = submit socket spec in
      let final = wait socket id in
      Alcotest.(check string)
        "falsified" "falsified"
        (jstr final [ "verdict"; "verdict" ]);
      (match Server.Protocol.outcome_of_json (jget final [ "verdict" ]) with
      | Common.Outcome.Refuted x ->
          Util.check_true "witness in region"
            (Domains.Box.contains spec.Server.Protocol.box x)
      | _ -> Alcotest.fail "expected a witness");
      (* The event stream tells the whole story, in order. *)
      let labels =
        match jget final [ "events" ] with
        | J.Arr events -> List.map (fun e -> jstr e [ "label" ]) events
        | _ -> Alcotest.fail "events must be an array"
      in
      Util.check_true
        (Printf.sprintf "event order (got %s)" (String.concat " -> " labels))
        (match labels with
        | [ "queued"; "running"; "falsified" ] -> true
        | _ -> false))

let test_cache_hit_on_repeat () =
  with_daemon (fun socket ->
      (* Large enough that the cold run costs real wall time, small
         enough to stay far from the test deadline. *)
      let spec = staircase_spec 5 in
      let id, first = submit socket spec in
      Util.check_true "cold submit misses" (not (jbool first [ "cache"; "hit" ]));
      let final = wait socket id in
      let cold_wall = jfloat final [ "wall_seconds" ] in
      Util.check_true "cold run does real work" (cold_wall > 0.0);
      (* Same question again: answered synchronously from the cache,
         with the cold run's cost echoed for comparison. *)
      let t0 = Unix.gettimeofday () in
      let _, second = submit socket spec in
      let hit_wall = Unix.gettimeofday () -. t0 in
      Alcotest.(check string) "done at submit" "done" (jstr second [ "state" ]);
      Util.check_true "cache hit" (jbool second [ "cache"; "hit" ]);
      Alcotest.(check string)
        "same verdict" "verified"
        (jstr second [ "verdict"; "verdict" ]);
      Util.check_close ~eps:1e-12 "cold wall echoed" cold_wall
        (jfloat second [ "cache"; "cold_wall_seconds" ]);
      (* The acceptance bar: a repeat answered at least 10x faster than
         the cold run it replaces (in practice it is a socket round
         trip vs hundreds of milliseconds of verification). *)
      Util.check_true
        (Printf.sprintf "10x faster (%.4fs cached vs %.4fs cold)" hit_wall
           cold_wall)
        (hit_wall *. 10.0 <= cold_wall);
      (* A different question (other target class) must not hit. *)
      let other = { spec with Server.Protocol.target = 1 } in
      let id, third = submit socket other in
      Util.check_true "different key misses" (not (jbool third [ "cache"; "hit" ]));
      ignore (wait socket id);
      let stats = get_stats socket in
      Util.check_true "hits counted" (jint stats [ "cache"; "hits" ] >= 1);
      Util.check_true "misses counted" (jint stats [ "cache"; "misses" ] >= 2);
      Util.check_true "hit rate reported"
        (jfloat stats [ "cache"; "hit_rate" ] > 0.0);
      (* The verifications behind the verdicts above ran with the
         shared proof cache attached: lookups must have been counted
         and the proved subregions recorded. *)
      Util.check_true "proof cache consulted"
        (jint stats [ "proofcache"; "lookups" ] >= 1);
      Util.check_true "proved subregions recorded"
        (jint stats [ "proofcache"; "entries" ] >= 1);
      Util.check_true "proof cache hit rate reported"
        (jfloat stats [ "proofcache"; "hit_rate" ] >= 0.0))

let test_concurrent_jobs_cancel_timeout () =
  with_daemon ~workers:4 (fun socket ->
      (* Ten effectively-endless jobs on four workers: four get claimed
         and run, six sit in the queue.  Distinct deltas make them ten
         distinct *questions* — same-question submits would coalesce
         onto one run (and same-seed ones would hit the cache). *)
      let ids =
        List.init 10 (fun i ->
            let spec =
              {
                (staircase_spec 20 ~seed:(100 + i)
                   ~name:(Printf.sprintf "slow-%d" i))
                with
                Server.Protocol.delta = 1e-4 +. (1e-7 *. float_of_int i);
              }
            in
            fst (submit socket spec))
      in
      let stats = get_stats socket in
      (* In-flight counts *claimed* jobs only (the queued backlog has
         its own gauge), so it can never exceed the pool width — this
         is the regression test for the gauge that used to count queued
         submissions too. *)
      Util.check_true
        (Printf.sprintf "in flight bounded by workers (got %d)"
           (jint stats [ "in_flight" ]))
        (jint stats [ "in_flight" ] <= 4);
      Util.check_true
        (Printf.sprintf "queued gauge sees the backlog (got %d)"
           (jint stats [ "queued" ]))
        (jint stats [ "queued" ] >= 6);
      (* Wait until the pool actually picked up four of them. *)
      let deadline = Unix.gettimeofday () +. 30.0 in
      let running () =
        List.length
          (List.filter
             (fun id ->
               jstr (status socket id) [ "state" ] = "running")
             ids)
      in
      while running () < 4 && Unix.gettimeofday () < deadline do
        Unix.sleepf 0.01
      done;
      Alcotest.(check int) "all four workers busy" 4 (running ());
      (* With all four workers pinned on endless jobs the gauges are
         stable: exactly the pool width in flight, the rest queued. *)
      let stats = get_stats socket in
      Alcotest.(check int) "in flight = workers" 4 (jint stats [ "in_flight" ]);
      Alcotest.(check int) "backlog queued" 6 (jint stats [ "queued" ]);
      (* A running job reports live progress. *)
      let some_running =
        List.find
          (fun id ->
            jstr (status socket id) [ "state" ] = "running")
          ids
      in
      let progressed () =
        jint (status socket some_running) [ "progress"; "nodes" ]
        > 0
      in
      while (not (progressed ())) && Unix.gettimeofday () < deadline do
        Unix.sleepf 0.01
      done;
      Util.check_true "running job streams split progress" (progressed ());
      (* Cancel them all: queued ones settle synchronously, running
         ones at the verifier's next region poll. *)
      List.iter (fun id -> check_ok (cancel socket id)) ids;
      let finals = List.map (fun id -> wait socket id) ids in
      List.iter
        (fun final ->
          Alcotest.(check string)
            "cancelled" "cancelled"
            (jstr final [ "state" ]))
        finals;
      let stats = get_stats socket in
      Alcotest.(check int) "nothing left in flight" 0
        (jint stats [ "in_flight" ]);
      Alcotest.(check int) "peak realised concurrency = pool width" 4
        (jint stats [ "peak_in_flight" ]);
      Alcotest.(check int) "all ten cancelled" 10
        (jint stats [ "jobs"; "cancelled" ]);
      (* Per-job budgets: a wall-clock timeout comes back as a timeout
         verdict, a step budget likewise; neither verdict is cached. *)
      let id, _ =
        submit socket (staircase_spec 20 ~timeout:0.2)
      in
      let final = wait socket id in
      Alcotest.(check string) "done" "done" (jstr final [ "state" ]);
      Alcotest.(check string)
        "wall timeout" "timeout"
        (jstr final [ "verdict"; "verdict" ]);
      let id, resubmit =
        submit socket (staircase_spec 20 ~timeout:0.2)
      in
      Util.check_true "timeouts are not cached"
        (not (jbool resubmit [ "cache"; "hit" ]));
      ignore (wait socket id);
      let id, _ =
        submit socket (staircase_spec 20 ~max_steps:50 ~seed:2)
      in
      let final = wait socket id in
      Alcotest.(check string)
        "step timeout" "timeout"
        (jstr final [ "verdict"; "verdict" ]))

let test_failed_job_and_bad_requests () =
  with_daemon ~workers:1 (fun socket ->
      (* A syntactically valid request whose network text is garbage
         fails that job — and only that job. *)
      let spec =
        { (staircase_spec 2) with Server.Protocol.network = "not a network" }
      in
      let id, _ = submit socket spec in
      let final = wait socket id in
      Alcotest.(check string) "failed" "failed" (jstr final [ "state" ]);
      Util.check_true "failure reason included"
        (J.member "error" final <> None);
      (* The daemon survives and still answers. *)
      let id, _ = submit socket (staircase_spec 2) in
      Alcotest.(check string)
        "next job unaffected" "verified"
        (jstr (wait socket id) [ "verdict"; "verdict" ]);
      (* Unknown ids and malformed requests are refusals, not crashes. *)
      (match status socket 999 with
      | _ -> Alcotest.fail "unknown job id must be refused"
      | exception Server.Client.Server_error _ -> ());
      let raw_request line =
        let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
        Fun.protect
          ~finally:(fun () -> try Unix.close fd with Unix.Unix_error _ -> ())
          (fun () ->
            Unix.connect fd (Unix.ADDR_UNIX socket);
            let oc = Unix.out_channel_of_descr fd in
            output_string oc (line ^ "\n");
            flush oc;
            input_line (Unix.in_channel_of_descr fd))
      in
      Util.check_true "malformed json refused"
        (not (jbool (J.parse (raw_request "this is not json")) [ "ok" ]));
      Util.check_true "unknown op refused"
        (not (jbool (J.parse (raw_request {|{"op":"frobnicate"}|})) [ "ok" ]));
      (* And the daemon is still alive after both. *)
      check_ok (ping socket))

let test_restart_durability () =
  (* The persistent verdict store: solve cold, stop the daemon, start a
     fresh one (empty LRU) on the same journal — the same question must
     answer synchronously from disk, verdict and cold cost intact. *)
  let socket = fresh_socket () in
  let store =
    Filename.concat
      (Filename.get_temp_dir_name ())
      (Printf.sprintf "charon-store-test-%d.jsonl" (Unix.getpid ()))
  in
  if Sys.file_exists store then Sys.remove store;
  Fun.protect
    ~finally:(fun () -> if Sys.file_exists store then Sys.remove store)
    (fun () ->
      let handle =
        Server.Daemon.start ~socket ~workers:2 ~store_path:store ()
      in
      let spec = staircase_spec 5 ~name:"durable" in
      let id, first = submit socket spec in
      Util.check_true "cold submit misses"
        (not (jbool first [ "cache"; "hit" ]));
      let final = wait socket id in
      Alcotest.(check string)
        "solved cold" "verified"
        (jstr final [ "verdict"; "verdict" ]);
      let cold_wall = jfloat final [ "wall_seconds" ] in
      Server.Daemon.stop handle;
      (* Simulate a crash mid-append: a torn half-line at the journal's
         tail must be skipped on replay, not poison the restart. *)
      let oc = open_out_gen [ Open_append ] 0o644 store in
      output_string oc "{\"v\":1,\"key\":\"feedbeef\",\"verd";
      close_out oc;
      let handle =
        Server.Daemon.start ~socket ~workers:2 ~store_path:store ()
      in
      let _, second = submit socket spec in
      Alcotest.(check string)
        "done at submit" "done"
        (jstr second [ "state" ]);
      Util.check_true "answered from disk across the restart"
        (jbool second [ "cache"; "hit" ]);
      Alcotest.(check string)
        "same verdict" "verified"
        (jstr second [ "verdict"; "verdict" ]);
      Util.check_close ~eps:1e-9 "cold cost survives the restart" cold_wall
        (jfloat second [ "cache"; "cold_wall_seconds" ]);
      let st = get_stats socket in
      Util.check_true "journal replayed into the store"
        (jint st [ "store"; "loaded" ] >= 1);
      Util.check_true "store hit counted" (jint st [ "store"; "hits" ] >= 1);
      Server.Daemon.stop handle)

let test_tcp_tenants_quota_coalescing () =
  (* The multi-tenant TCP endpoint: hello handshake, API keys, quotas,
     and cross-tenant coalescing — all deterministic (the statistical
     fairness properties live in the soak test). *)
  let tenants =
    Server.Tenant.of_json
      (J.parse
         {|{"tenants":[
             {"name":"alice","key":"ka","quota":2},
             {"name":"bob","key":"kb","weight":2.0}]}|})
  in
  let handle =
    Server.Daemon.start ~tcp:("127.0.0.1", 0) ~workers:2 ~tenants ()
  in
  Fun.protect
    ~finally:(fun () -> try Server.Daemon.stop handle with _ -> ())
    (fun () ->
      let port =
        match Server.Daemon.tcp_port handle with
        | Some p -> p
        | None -> Alcotest.fail "daemon bound no TCP port"
      in
      let addr = Server.Client.Tcp ("127.0.0.1", port) in
      (* No key: refused at the handshake, terminally. *)
      (match Server.Client.ping ~addr () with
      | _ -> Alcotest.fail "anonymous TCP must be refused under tenancy"
      | exception Server.Client.Rejected r ->
          Alcotest.(check string) "auth code" "auth" r.code;
          Util.check_true "auth is not retryable" (not r.retryable));
      (* Wrong key: same refusal. *)
      (match Server.Client.ping ~api_key:"nope" ~addr () with
      | _ -> Alcotest.fail "unknown key must be refused"
      | exception Server.Client.Rejected r ->
          Alcotest.(check string) "auth code" "auth" r.code);
      (* A configured key verifies end to end over TCP. *)
      check_ok (Server.Client.ping ~api_key:"ka" ~addr ());
      let id, _ = Server.Client.submit ~api_key:"ka" ~addr (staircase_spec 3) in
      let final = Server.Client.wait ~api_key:"ka" ~addr ~deadline:60.0 id in
      Alcotest.(check string)
        "verified over TCP" "verified"
        (jstr final [ "verdict"; "verdict" ]);
      (* Quota: alice may hold two outstanding jobs; the third submit
         is a retryable structured reject, charged to her alone. *)
      let slow i =
        {
          (staircase_spec 20 ~seed:(300 + i))
          with
          Server.Protocol.delta = 1e-4 +. (1e-7 *. float_of_int i);
        }
      in
      let a = fst (Server.Client.submit ~api_key:"ka" ~addr (slow 0)) in
      let b = fst (Server.Client.submit ~api_key:"ka" ~addr (slow 1)) in
      (match Server.Client.submit ~api_key:"ka" ~addr (slow 2) with
      | _ -> Alcotest.fail "third outstanding job must trip the quota"
      | exception Server.Client.Rejected r ->
          Alcotest.(check string) "quota code" "quota" r.code;
          Util.check_true "quota is retryable" r.retryable);
      (* Bob is unaffected by alice's quota, and his submit of alice's
         exact question coalesces onto her in-flight run instead of
         queueing a second one. *)
      let c = fst (Server.Client.submit ~api_key:"kb" ~addr (slow 0)) in
      let st = Server.Client.stats ~api_key:"kb" ~addr () in
      Util.check_true "coalesced counted"
        (jint st [ "coalesce"; "coalesced_total" ] >= 1);
      let tenant_block name =
        match jget st [ "tenants" ] with
        | J.Arr ts -> (
            match
              List.find_opt (fun t -> jstr t [ "name" ] = name) ts
            with
            | Some t -> t
            | None -> Alcotest.failf "no tenant %S in stats" name)
        | _ -> Alcotest.fail "tenants must be an array"
      in
      Util.check_true "alice's quota reject counted"
        (jint (tenant_block "alice") [ "rejected_quota" ] >= 1);
      Util.check_true "bob's coalesce counted"
        (jint (tenant_block "bob") [ "coalesced" ] >= 1);
      (* Everyone cancels cleanly; bob's detach must not kill alice's
         run, and vice versa. *)
      check_ok (Server.Client.cancel ~api_key:"kb" ~addr c);
      check_ok (Server.Client.cancel ~api_key:"ka" ~addr a);
      check_ok (Server.Client.cancel ~api_key:"ka" ~addr b);
      List.iter
        (fun (key, id) ->
          Alcotest.(check string)
            "cancelled" "cancelled"
            (jstr
               (Server.Client.wait ~api_key:key ~addr ~deadline:60.0 id)
               [ "state" ]))
        [ ("kb", c); ("ka", a); ("ka", b) ])

let test_shutdown_cancels_pending () =
  (* Shutdown with a full queue: pending jobs are cancelled, every
     domain is joined, the socket file disappears, and a fresh daemon
     can bind the same path again. *)
  let socket = fresh_socket () in
  let handle = Server.Daemon.start ~socket ~workers:2 () in
  let ids =
    List.init 6 (fun i ->
        fst (submit socket (staircase_spec 20 ~seed:(200 + i))))
  in
  Alcotest.(check int) "six submitted" 6 (List.length ids);
  Server.Daemon.stop handle;
  Util.check_true "socket removed" (not (Sys.file_exists socket));
  (match ping socket with
  | _ -> Alcotest.fail "daemon still answering after stop"
  | exception (Unix.Unix_error _ | Sys_error _) -> ());
  (* Same path, fresh daemon: nothing from the first life leaks in. *)
  let handle = Server.Daemon.start ~socket ~workers:2 () in
  let stats = get_stats socket in
  Alcotest.(check int) "fresh job table" 0 (jint stats [ "jobs"; "submitted" ]);
  Server.Daemon.stop handle;
  Util.check_true "socket removed again" (not (Sys.file_exists socket))

let () =
  Alcotest.run "server"
    [
      ( "lifecycle",
        [
          Util.case "ping and stats" test_ping_and_stats;
          Util.case "verdicts round-trip" test_verdicts_round_trip;
          Util.case "repeat submit hits the cache" test_cache_hit_on_repeat;
          Util.slow_case "concurrency, cancellation, timeouts"
            test_concurrent_jobs_cancel_timeout;
          Util.case "failed jobs stay isolated" test_failed_job_and_bad_requests;
          Util.case "verdict store survives a restart" test_restart_durability;
          Util.slow_case "TCP tenants: auth, quota, coalescing"
            test_tcp_tenants_quota_coalescing;
          Util.case "shutdown cancels pending work" test_shutdown_cancels_pending;
        ] );
    ]
