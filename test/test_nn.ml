open Linalg

(* ------------------------------------------------------------------ *)
(* Shape *)

let test_shape_size_index () =
  let s = Nn.Shape.create ~channels:2 ~height:3 ~width:4 in
  Alcotest.(check int) "size" 24 (Nn.Shape.size s);
  Alcotest.(check int) "index 0" 0 (Nn.Shape.index s ~c:0 ~i:0 ~j:0);
  Alcotest.(check int) "index last" 23 (Nn.Shape.index s ~c:1 ~i:2 ~j:3);
  Alcotest.(check int) "chw layout" 12 (Nn.Shape.index s ~c:1 ~i:0 ~j:0)

let test_shape_conv_output () =
  let s = Nn.Shape.create ~channels:1 ~height:8 ~width:8 in
  let o = Nn.Shape.conv_output s ~kernel:3 ~stride:1 ~padding:1 ~out_channels:4 in
  Util.check_true "same spatial"
    (Nn.Shape.equal o (Nn.Shape.create ~channels:4 ~height:8 ~width:8));
  let p = Nn.Shape.conv_output s ~kernel:2 ~stride:2 ~padding:0 ~out_channels:1 in
  Util.check_true "pooling halves"
    (Nn.Shape.equal p (Nn.Shape.create ~channels:1 ~height:4 ~width:4))

let test_shape_bad_geometry () =
  let s = Nn.Shape.create ~channels:1 ~height:5 ~width:5 in
  Alcotest.check_raises "stride does not tile"
    (Invalid_argument "Shape.conv_output: stride does not tile the input")
    (fun () ->
      ignore (Nn.Shape.conv_output s ~kernel:2 ~stride:2 ~padding:0 ~out_channels:1))

(* ------------------------------------------------------------------ *)
(* Conv *)

let random_conv rng ~input ~out_channels ~kernel ~stride ~padding =
  let in_channels = input.Nn.Shape.channels in
  let count = out_channels * in_channels * kernel * kernel in
  Nn.Conv.create ~input ~out_channels ~kernel ~stride ~padding
    ~weights:(Array.init count (fun _ -> Rng.gaussian rng))
    ~bias:(Vec.init out_channels (fun _ -> Rng.gaussian rng))

let test_conv_forward_matches_affine_lowering () =
  Util.repeat ~seed:20 ~count:20 (fun rng _ ->
      let input =
        Nn.Shape.create ~channels:(1 + Rng.int rng 2) ~height:4 ~width:4
      in
      let c =
        random_conv rng ~input ~out_channels:(1 + Rng.int rng 3) ~kernel:3
          ~stride:1 ~padding:1
      in
      let x = Vec.init (Nn.Shape.size input) (fun _ -> Rng.gaussian rng) in
      let w, b = Nn.Conv.to_affine c in
      Util.check_vec ~eps:1e-9 "direct = lowered"
        (Vec.add (Mat.matvec w x) b)
        (Nn.Conv.forward c x))

let test_conv_strided_matches_lowering () =
  Util.repeat ~seed:21 ~count:10 (fun rng _ ->
      let input = Nn.Shape.create ~channels:2 ~height:6 ~width:6 in
      let c = random_conv rng ~input ~out_channels:3 ~kernel:2 ~stride:2 ~padding:0 in
      let x = Vec.init (Nn.Shape.size input) (fun _ -> Rng.gaussian rng) in
      let w, b = Nn.Conv.to_affine c in
      Util.check_vec ~eps:1e-9 "strided direct = lowered"
        (Vec.add (Mat.matvec w x) b)
        (Nn.Conv.forward c x))

let test_conv_backward_is_transpose () =
  Util.repeat ~seed:22 ~count:20 (fun rng _ ->
      let input = Nn.Shape.create ~channels:1 ~height:4 ~width:4 in
      let c = random_conv rng ~input ~out_channels:2 ~kernel:3 ~stride:1 ~padding:1 in
      let out = Nn.Conv.output_shape c in
      let dout = Vec.init (Nn.Shape.size out) (fun _ -> Rng.gaussian rng) in
      let w, _ = Nn.Conv.to_affine c in
      Util.check_vec ~eps:1e-9 "backward = W^T dout"
        (Mat.matvec_t w dout)
        (Nn.Conv.backward c ~dout))

let test_conv_grad_params_finite_diff () =
  let rng = Rng.create 23 in
  let input = Nn.Shape.create ~channels:1 ~height:3 ~width:3 in
  let c = random_conv rng ~input ~out_channels:1 ~kernel:2 ~stride:1 ~padding:0 in
  let x = Vec.init (Nn.Shape.size input) (fun _ -> Rng.gaussian rng) in
  let out_dim = Nn.Shape.size (Nn.Conv.output_shape c) in
  let dout = Vec.create out_dim 1.0 in
  let dw, db = Nn.Conv.grad_params c ~x ~dout in
  (* loss = sum of outputs; finite-difference each parameter. *)
  let loss weights bias =
    let c' =
      Nn.Conv.create ~input ~out_channels:1 ~kernel:2 ~stride:1 ~padding:0
        ~weights ~bias
    in
    Vec.sum (Nn.Conv.forward c' x)
  in
  let eps = 1e-5 in
  Array.iteri
    (fun i g ->
      let bump s =
        let w = Array.copy c.Nn.Conv.weights in
        w.(i) <- w.(i) +. s;
        loss w c.Nn.Conv.bias
      in
      Util.check_close ~eps:1e-4 "dweight"
        ((bump eps -. bump (-.eps)) /. (2.0 *. eps))
        g)
    dw;
  Array.iteri
    (fun i g ->
      let bump s =
        let b = Vec.copy c.Nn.Conv.bias in
        b.(i) <- b.(i) +. s;
        loss c.Nn.Conv.weights b
      in
      Util.check_close ~eps:1e-4 "dbias"
        ((bump eps -. bump (-.eps)) /. (2.0 *. eps))
        g)
    db

(* The im2col + GEMM kernels against the direct nested-loop oracles,
   over varied geometry (padding, stride, channel counts). *)
let test_conv_gemm_matches_direct_oracles () =
  Util.repeat ~seed:24 ~count:15 (fun rng _ ->
      let channels = 1 + Rng.int rng 3 in
      let stride = 1 + Rng.int rng 2 in
      let padding = Rng.int rng 2 in
      let kernel = if stride = 2 then 2 else 2 + Rng.int rng 2 in
      let hw = if stride = 2 then 6 else 5 + Rng.int rng 3 in
      let input = Nn.Shape.create ~channels ~height:hw ~width:hw in
      let c =
        random_conv rng ~input ~out_channels:(1 + Rng.int rng 3) ~kernel
          ~stride ~padding
      in
      let x = Vec.init (Nn.Shape.size input) (fun _ -> Rng.gaussian rng) in
      let out_dim = Nn.Shape.size (Nn.Conv.output_shape c) in
      let dout = Vec.init out_dim (fun _ -> Rng.gaussian rng) in
      Util.check_vec ~eps:1e-9 "forward = direct"
        (Nn.Conv.forward_direct c x)
        (Nn.Conv.forward c x);
      Util.check_vec ~eps:1e-9 "backward = direct"
        (Nn.Conv.backward_direct c ~dout)
        (Nn.Conv.backward c ~dout);
      let dw, db = Nn.Conv.grad_params c ~x ~dout in
      let dw', db' = Nn.Conv.grad_params_direct c ~x ~dout in
      Util.check_vec ~eps:1e-9 "dweights = direct" dw' dw;
      Util.check_vec ~eps:1e-9 "dbias = direct" db' db)

(* ------------------------------------------------------------------ *)
(* Pool *)

let test_pool_forward () =
  let input = Nn.Shape.create ~channels:1 ~height:2 ~width:2 in
  let p = Nn.Pool.create ~input ~kernel:2 ~stride:2 in
  Util.check_vec "max of window" [| 4.0 |]
    (Nn.Pool.forward p [| 1.0; 4.0; 2.0; 3.0 |])

let test_pool_windows_cover_input () =
  let input = Nn.Shape.create ~channels:2 ~height:4 ~width:4 in
  let p = Nn.Pool.create ~input ~kernel:2 ~stride:2 in
  let seen = Array.make (Nn.Shape.size input) false in
  Array.iter
    (fun w -> Array.iter (fun i -> seen.(i) <- true) w)
    (Nn.Pool.windows p);
  Util.check_true "every input in some window" (Array.for_all Fun.id seen)

let test_pool_backward_routes_to_argmax () =
  let input = Nn.Shape.create ~channels:1 ~height:2 ~width:2 in
  let p = Nn.Pool.create ~input ~kernel:2 ~stride:2 in
  let x = [| 1.0; 4.0; 2.0; 3.0 |] in
  Util.check_vec "grad to max input" [| 0.0; 5.0; 0.0; 0.0 |]
    (Nn.Pool.backward p ~x ~dout:[| 5.0 |])

let test_avgpool_forward () =
  let input = Nn.Shape.create ~channels:1 ~height:2 ~width:2 in
  let p = Nn.Avgpool.create ~input ~kernel:2 ~stride:2 in
  Util.check_vec "mean of window" [| 2.5 |]
    (Nn.Avgpool.forward p [| 1.0; 4.0; 2.0; 3.0 |])

let test_avgpool_matches_lowering () =
  Util.repeat ~seed:25 ~count:10 (fun rng _ ->
      let input = Nn.Shape.create ~channels:2 ~height:4 ~width:4 in
      let p = Nn.Avgpool.create ~input ~kernel:2 ~stride:2 in
      let x = Vec.init (Nn.Shape.size input) (fun _ -> Rng.gaussian rng) in
      let w, b = Nn.Avgpool.to_affine p in
      Util.check_vec ~eps:1e-9 "direct = lowered"
        (Vec.add (Mat.matvec w x) b)
        (Nn.Avgpool.forward p x))

let test_avgpool_backward_is_transpose () =
  let rng = Rng.create 26 in
  let input = Nn.Shape.create ~channels:1 ~height:4 ~width:4 in
  let p = Nn.Avgpool.create ~input ~kernel:2 ~stride:2 in
  let dout = Vec.init 4 (fun _ -> Rng.gaussian rng) in
  let w, _ = Nn.Avgpool.to_affine p in
  Util.check_vec ~eps:1e-9 "backward = W^T dout" (Mat.matvec_t w dout)
    (Nn.Avgpool.backward p ~dout)

let test_avgpool_lenet_end_to_end () =
  (* The avg-pooling LeNet variant works through serialization,
     gradients, and (because pooling is affine) the complete checker's
     encoding. *)
  let rng = Rng.create 27 in
  let input = Nn.Shape.create ~channels:1 ~height:4 ~width:4 in
  let net = Nn.Init.lenet_like ~pooling:`Avg rng ~input ~classes:3 in
  let x = Vec.init 16 (fun _ -> Rng.float rng 1.0) in
  let net' = Nn.Serial.of_string (Nn.Serial.to_string net) in
  Util.check_vec ~eps:0.0 "serial roundtrip" (Nn.Network.eval net x)
    (Nn.Network.eval net' x);
  let g = Nn.Grad.grad_output net ~x ~k:0 in
  let fd =
    Nn.Grad.finite_diff (fun y -> (Nn.Network.eval net y).(0)) x ~eps:1e-5
  in
  Util.check_vec ~eps:1e-3 "gradient" fd g;
  (* Encodes for the complete checker, unlike the max-pooling LeNet. *)
  let region = Domains.Box.of_center_radius x 0.01 in
  ignore (Reluplex.Encoding.build net region)

(* ------------------------------------------------------------------ *)
(* Network: the paper's example networks *)

let test_xor_truth_table () =
  let net = Nn.Init.xor () in
  List.iter
    (fun ((a, b), expected) ->
      Alcotest.(check int)
        (Printf.sprintf "xor %g %g" a b)
        expected
        (Nn.Network.classify net [| a; b |]))
    [ ((0.0, 0.0), 0); ((0.0, 1.0), 1); ((1.0, 0.0), 1); ((1.0, 1.0), 0) ]

let test_example_2_2_outputs () =
  let net = Nn.Init.example_2_2 () in
  (* N(x) = [a+1; a+2] with a = relu(2x+1) on [-1, 1] (the paper's
     N(0) = [1 3] is a typo; its own closed form gives [2 3]). *)
  Util.check_vec "N(0)" [| 2.0; 3.0 |] (Nn.Network.eval net [| 0.0 |]);
  (* N(2) = [8; 6] per the paper, so 2 is classified as class 0. *)
  Util.check_vec "N(2)" [| 8.0; 6.0 |] (Nn.Network.eval net [| 2.0 |]);
  Alcotest.(check int) "class of 0" 1 (Nn.Network.classify net [| 0.0 |]);
  Alcotest.(check int) "class of 2" 0 (Nn.Network.classify net [| 2.0 |])

let test_example_2_3_class_b_inside () =
  let net = Nn.Init.example_2_3 () in
  let rng = Rng.create 31 in
  for _ = 1 to 500 do
    let x = [| Rng.float rng 1.0; Rng.float rng 1.0 |] in
    Alcotest.(check int) "class B on [0,1]^2" 1 (Nn.Network.classify net x)
  done

let test_network_dimension_check () =
  Alcotest.check_raises "mismatched layers"
    (Invalid_argument
       "Network.create: layer 'affine 2x3' expects input dim 3, got 2")
    (fun () ->
      ignore
        (Nn.Network.create ~input_dim:2
           [ Nn.Layer.affine (Mat.zeros 2 3) (Vec.zeros 2) ]))

let test_forward_trace_shape () =
  let net = Nn.Init.xor () in
  let trace = Nn.Network.forward_trace net [| 0.0; 1.0 |] in
  Alcotest.(check int) "trace length" 4 (Array.length trace);
  Util.check_vec "last is output" (Nn.Network.eval net [| 0.0; 1.0 |])
    trace.(3)

let test_num_relu_units () =
  let net = Util.random_dense (Rng.create 1) [ 4; 7; 5; 3 ] in
  Alcotest.(check int) "relu units" 12 (Nn.Network.num_relu_units net)

let test_lipschitz_bound_holds () =
  Util.repeat ~seed:32 ~count:20 (fun rng _ ->
      let net = Util.small_net rng in
      let l = Nn.Network.lipschitz_upper net in
      let x = Vec.init net.Nn.Network.input_dim (fun _ -> Rng.gaussian rng) in
      let y = Vec.init net.Nn.Network.input_dim (fun _ -> Rng.gaussian rng) in
      let dx = Vec.norm_inf (Vec.sub x y) in
      let dy =
        Vec.norm_inf (Vec.sub (Nn.Network.eval net x) (Nn.Network.eval net y))
      in
      Util.check_true "|N(x)-N(y)| <= L |x-y|" (dy <= (l *. dx) +. 1e-9))

(* ------------------------------------------------------------------ *)
(* Grad: backprop vs finite differences *)

let test_grad_matches_finite_diff_dense () =
  Util.repeat ~seed:33 ~count:20 (fun rng _ ->
      let net = Util.small_net rng in
      let x =
        Vec.init net.Nn.Network.input_dim (fun _ ->
            Rng.uniform rng ~lo:(-1.0) ~hi:1.0)
      in
      let k = Rng.int rng net.Nn.Network.output_dim in
      let g = Nn.Grad.grad_output net ~x ~k in
      let fd =
        Nn.Grad.finite_diff (fun y -> (Nn.Network.eval net y).(k)) x ~eps:1e-5
      in
      Util.check_vec ~eps:1e-4 "backprop = finite diff" fd g)

let test_grad_matches_finite_diff_conv () =
  let rng = Rng.create 34 in
  let input = Nn.Shape.create ~channels:1 ~height:4 ~width:4 in
  let net = Nn.Init.lenet_like rng ~input ~classes:3 in
  let x = Vec.init (Nn.Shape.size input) (fun _ -> Rng.uniform rng ~lo:0.0 ~hi:1.0) in
  let g = Nn.Grad.grad_output net ~x ~k:1 in
  let fd =
    Nn.Grad.finite_diff (fun y -> (Nn.Network.eval net y).(1)) x ~eps:1e-5
  in
  Util.check_vec ~eps:1e-3 "conv net gradient" fd g

let test_vjp_linearity () =
  Util.repeat ~seed:35 ~count:10 (fun rng _ ->
      let net = Util.small_net rng in
      let x = Vec.init net.Nn.Network.input_dim (fun _ -> Rng.gaussian rng) in
      let m = net.Nn.Network.output_dim in
      let u = Vec.init m (fun _ -> Rng.gaussian rng) in
      let v = Vec.init m (fun _ -> Rng.gaussian rng) in
      Util.check_vec ~eps:1e-9 "vjp is linear in the cotangent"
        (Vec.add (Nn.Grad.vjp net ~x ~dout:u) (Nn.Grad.vjp net ~x ~dout:v))
        (Nn.Grad.vjp net ~x ~dout:(Vec.add u v)))

(* ------------------------------------------------------------------ *)
(* Batched layer application *)

let test_layer_batch_matches_per_sample () =
  let rng = Rng.create 31 in
  let input = Nn.Shape.create ~channels:2 ~height:4 ~width:4 in
  let in_dim = Nn.Shape.size input in
  let layers =
    [
      Nn.Layer.affine
        (Mat.init 5 in_dim (fun _ _ -> Rng.gaussian rng))
        (Vec.init 5 (fun _ -> Rng.gaussian rng));
      Nn.Layer.Relu;
      Nn.Layer.Conv
        (random_conv rng ~input ~out_channels:3 ~kernel:3 ~stride:1 ~padding:1);
      Nn.Layer.Maxpool (Nn.Pool.create ~input ~kernel:2 ~stride:2);
    ]
  in
  List.iter
    (fun layer ->
      let batch = 6 in
      let out_dim = Nn.Layer.output_dim ~given:in_dim layer in
      let x = Mat.init batch in_dim (fun _ _ -> Rng.gaussian rng) in
      let y = Nn.Layer.forward_batch layer x in
      Alcotest.(check int) "output cols" out_dim y.Mat.cols;
      for r = 0 to batch - 1 do
        Util.check_vec ~eps:1e-9 "forward row"
          (Nn.Layer.forward layer (Mat.row x r))
          (Mat.row y r)
      done;
      let dout = Mat.init batch out_dim (fun _ _ -> Rng.gaussian rng) in
      let dx = Nn.Layer.backward_batch layer ~x ~dout in
      for r = 0 to batch - 1 do
        Util.check_vec ~eps:1e-9 "backward row"
          (Nn.Layer.backward layer ~x:(Mat.row x r) ~dout:(Mat.row dout r))
          (Mat.row dx r)
      done)
    layers

(* ------------------------------------------------------------------ *)
(* Train *)

let test_softmax_properties () =
  let s = Nn.Train.softmax [| 1.0; 2.0; 3.0 |] in
  Util.check_close ~eps:1e-9 "sums to one" 1.0 (Vec.sum s);
  Util.check_true "monotone" (s.(0) < s.(1) && s.(1) < s.(2));
  let s' = Nn.Train.softmax [| 101.0; 102.0; 103.0 |] in
  Util.check_vec ~eps:1e-9 "shift invariant" s s'

let test_cross_entropy_positive () =
  let scores = [| 0.5; -0.2; 1.0 |] in
  for label = 0 to 2 do
    Util.check_true "nonnegative" (Nn.Train.cross_entropy_loss scores label >= 0.0)
  done

let test_training_improves_accuracy () =
  let rng = Rng.create 40 in
  let spec = Datasets.Synth_images.tiny in
  let data = Datasets.Synth_images.dataset rng spec ~per_class:30 in
  let net =
    Util.random_dense rng
      [ Nn.Shape.size spec.Datasets.Synth_images.shape; 12; 3 ]
  in
  let before = Nn.Train.accuracy net data in
  let config =
    {
      Nn.Train.epochs = 20;
      batch_size = 16;
      learning_rate = 0.05;
      weight_decay = 0.0;
      momentum = 0.9;
    }
  in
  let trained = Nn.Train.train ~config ~rng net data in
  let after = Nn.Train.accuracy trained data in
  Util.check_true
    (Printf.sprintf "accuracy improves (%.2f -> %.2f)" before after)
    (after > before && after > 0.9)

let test_training_reduces_loss () =
  let rng = Rng.create 41 in
  let spec = Datasets.Synth_images.tiny in
  let data = Datasets.Synth_images.dataset rng spec ~per_class:20 in
  let net =
    Util.random_dense rng [ Nn.Shape.size spec.Datasets.Synth_images.shape; 8; 3 ]
  in
  let before = Nn.Train.mean_loss net data in
  let trained = Nn.Train.train ~rng net data in
  Util.check_true "loss decreases" (Nn.Train.mean_loss trained data < before)

let test_training_conv_net () =
  let rng = Rng.create 42 in
  let spec = Datasets.Synth_images.tiny in
  let data = Datasets.Synth_images.dataset rng spec ~per_class:20 in
  let net =
    Nn.Init.lenet_like rng ~input:spec.Datasets.Synth_images.shape ~classes:3
  in
  let config =
    {
      Nn.Train.epochs = 30;
      batch_size = 16;
      learning_rate = 0.02;
      weight_decay = 0.0;
      momentum = 0.9;
    }
  in
  let trained = Nn.Train.train ~config ~rng net data in
  Util.check_true "conv net learns" (Nn.Train.accuracy trained data > 0.8)

(* ------------------------------------------------------------------ *)
(* Serial *)

let test_serial_roundtrip_dense () =
  Util.repeat ~seed:43 ~count:10 (fun rng _ ->
      let net = Util.small_net rng in
      let net' = Nn.Serial.of_string (Nn.Serial.to_string net) in
      let x = Vec.init net.Nn.Network.input_dim (fun _ -> Rng.gaussian rng) in
      Util.check_vec ~eps:0.0 "exact roundtrip" (Nn.Network.eval net x)
        (Nn.Network.eval net' x))

let test_serial_roundtrip_conv () =
  let rng = Rng.create 44 in
  let input = Nn.Shape.create ~channels:1 ~height:4 ~width:4 in
  let net = Nn.Init.lenet_like rng ~input ~classes:3 in
  let net' = Nn.Serial.of_string (Nn.Serial.to_string net) in
  let x = Vec.init (Nn.Shape.size input) (fun _ -> Rng.float rng 1.0) in
  Util.check_vec ~eps:0.0 "conv roundtrip" (Nn.Network.eval net x)
    (Nn.Network.eval net' x)

let test_serial_rejects_garbage () =
  Alcotest.check_raises "bad header"
    (Failure "Serial: expected \"network\", got \"garbage\"") (fun () ->
      ignore (Nn.Serial.of_string "garbage 3"))

let test_serial_file_roundtrip () =
  let net = Nn.Init.xor () in
  let path = Filename.temp_file "charon_test" ".net" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      Nn.Serial.save path net;
      let net' = Nn.Serial.load path in
      Util.check_vec ~eps:0.0 "file roundtrip"
        (Nn.Network.eval net [| 1.0; 0.0 |])
        (Nn.Network.eval net' [| 1.0; 0.0 |]))

let () =
  Alcotest.run "nn"
    [
      ( "shape",
        [
          Util.case "size and index" test_shape_size_index;
          Util.case "conv output" test_shape_conv_output;
          Util.case "bad geometry" test_shape_bad_geometry;
        ] );
      ( "conv",
        [
          Util.case "forward matches lowering" test_conv_forward_matches_affine_lowering;
          Util.case "strided matches lowering" test_conv_strided_matches_lowering;
          Util.case "backward is transpose" test_conv_backward_is_transpose;
          Util.case "param grads vs finite diff" test_conv_grad_params_finite_diff;
          Util.case "gemm kernels match direct oracles"
            test_conv_gemm_matches_direct_oracles;
        ] );
      ( "pool",
        [
          Util.case "forward" test_pool_forward;
          Util.case "windows cover input" test_pool_windows_cover_input;
          Util.case "backward routes to argmax" test_pool_backward_routes_to_argmax;
          Util.case "avgpool forward" test_avgpool_forward;
          Util.case "avgpool matches lowering" test_avgpool_matches_lowering;
          Util.case "avgpool backward" test_avgpool_backward_is_transpose;
          Util.case "avgpool lenet end-to-end" test_avgpool_lenet_end_to_end;
        ] );
      ( "network",
        [
          Util.case "xor truth table" test_xor_truth_table;
          Util.case "example 2.2" test_example_2_2_outputs;
          Util.case "example 2.3 classifies B" test_example_2_3_class_b_inside;
          Util.case "dimension check" test_network_dimension_check;
          Util.case "forward trace" test_forward_trace_shape;
          Util.case "relu unit count" test_num_relu_units;
          Util.case "lipschitz bound" test_lipschitz_bound_holds;
        ] );
      ( "grad",
        [
          Util.case "dense vs finite diff" test_grad_matches_finite_diff_dense;
          Util.case "conv vs finite diff" test_grad_matches_finite_diff_conv;
          Util.case "vjp linearity" test_vjp_linearity;
        ] );
      ( "train",
        [
          Util.case "batched layers match per-sample" test_layer_batch_matches_per_sample;
          Util.case "softmax" test_softmax_properties;
          Util.case "cross entropy positive" test_cross_entropy_positive;
          Util.case "accuracy improves" test_training_improves_accuracy;
          Util.case "loss decreases" test_training_reduces_loss;
          Util.case "conv net trains" test_training_conv_net;
        ] );
      ( "serial",
        [
          Util.case "dense roundtrip" test_serial_roundtrip_dense;
          Util.case "conv roundtrip" test_serial_roundtrip_conv;
          Util.case "rejects garbage" test_serial_rejects_garbage;
          Util.case "file roundtrip" test_serial_file_roundtrip;
        ] );
    ]
